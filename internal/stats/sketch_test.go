package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestSketchExactBelowCapacity(t *testing.T) {
	s := NewSketch(64)
	xs := []float64{9, 1, 7, 3, 5}
	for _, x := range xs {
		s.Add(x)
	}
	if s.RankErrorBound() != 0 {
		t.Fatalf("uncompacted sketch reports error bound %d", s.RankErrorBound())
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0: %v", got)
	}
	if got := s.Quantile(1); got != 9 {
		t.Errorf("q1: %v", got)
	}
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("median: %v", got)
	}
	if got := s.Rank(5); got != 3 {
		t.Errorf("rank(5) = %d, want 3", got)
	}
}

func TestSketchDeterministic(t *testing.T) {
	run := func() []float64 {
		s := NewSketch(32)
		for i := 0; i < 10000; i++ {
			s.Add(float64(i * 7 % 10000))
		}
		var flat []float64
		for _, lv := range s.levels {
			flat = append(flat, lv...)
		}
		return flat
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("retained sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retained set not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSketchRankErrorBoundMillion is the accuracy acceptance test: on 10⁶
// samples the sketch's self-reported rank-error bound must hold against
// exact ranks at every probed point, and the bound itself must be small
// enough to be useful (≈2% of n at k = 512).
func TestSketchRankErrorBoundMillion(t *testing.T) {
	const n = 1_000_000
	rng := rand.New(rand.NewSource(42))
	s := NewSketch(512)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()*100 + rng.Float64() // continuous, effectively distinct
		s.Add(xs[i])
	}
	sort.Float64s(xs)

	bound := s.RankErrorBound()
	if bound <= 0 {
		t.Fatal("a million samples through a k=512 sketch must have compacted")
	}
	if frac := float64(bound) / n; frac > 0.03 {
		t.Errorf("rank-error bound %.2f%% of n is too loose for k=512", 100*frac)
	}
	if retained := s.Retained(); retained > 512*25 {
		t.Errorf("sketch retains %d values, want O(k·log(n/k))", retained)
	}

	// Probe the whole range, including the tails the farm metrics care about.
	var worst int64
	for i := 0; i <= 200; i++ {
		q := float64(i) / 200
		x := xs[int(q*float64(n-1))]
		trueRank := int64(sort.SearchFloat64s(xs, x)) // #values < x; ties negligible
		for trueRank < n && xs[trueRank] <= x {
			trueRank++
		}
		err := s.Rank(x) - trueRank
		if err < 0 {
			err = -err
		}
		if err > worst {
			worst = err
		}
		if err > bound {
			t.Fatalf("q=%.3f: rank error %d exceeds guaranteed bound %d", q, err, bound)
		}
	}
	t.Logf("n=%d k=512: bound=%d (%.3f%% of n), worst observed=%d, retained=%d",
		n, bound, 100*float64(bound)/n, worst, s.Retained())

	// Quantile answers land within bound + own weight of the target rank.
	maxW := int64(1) << (len(s.levels) - 1)
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		v := s.Quantile(q)
		r := int64(sort.SearchFloat64s(xs, v))
		target := int64(q * n)
		err := r - target
		if err < 0 {
			err = -err
		}
		if err > bound+maxW {
			t.Errorf("quantile %.3f: value rank %d vs target %d, error %d > %d", q, r, target, err, bound+maxW)
		}
	}
}

// TestSketchMergeOrderInvariant is the mergeability acceptance test: pooling
// shard sketches in any order must report the same quantiles (the property
// internal/mc's shard merge relies on for tail metrics).
func TestSketchMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const shards = 16
	parts := make([]*Sketch, shards)
	for i := range parts {
		parts[i] = NewSketch(64)
		for j := 0; j < 3000+500*i; j++ { // uneven shard sizes
			parts[i].Add(rng.ExpFloat64() * float64(i+1))
		}
	}
	quantiles := []float64{0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
	read := func(order []int) []float64 {
		m := NewSketch(64)
		for _, i := range order {
			m.Merge(parts[i])
		}
		out := make([]float64, len(quantiles))
		for k, q := range quantiles {
			out[k] = m.Quantile(q)
		}
		if m.N() != sumN(parts) {
			t.Fatalf("merged N %d", m.N())
		}
		return out
	}
	fwd := make([]int, shards)
	rev := make([]int, shards)
	shuf := make([]int, shards)
	for i := 0; i < shards; i++ {
		fwd[i] = i
		rev[i] = shards - 1 - i
	}
	copy(shuf, fwd)
	rand.New(rand.NewSource(1)).Shuffle(shards, func(a, b int) { shuf[a], shuf[b] = shuf[b], shuf[a] })

	a, b, c := read(fwd), read(rev), read(shuf)
	for k := range quantiles {
		if a[k] != b[k] || a[k] != c[k] {
			t.Errorf("q=%.2f depends on merge order: fwd=%v rev=%v shuf=%v", quantiles[k], a[k], b[k], c[k])
		}
	}
}

func sumN(parts []*Sketch) int64 {
	var n int64
	for _, p := range parts {
		n += p.N()
	}
	return n
}

func TestSketchMergePreservesBoundAndWeight(t *testing.T) {
	a, b := NewSketch(16), NewSketch(16)
	for i := 0; i < 1000; i++ {
		a.Add(float64(i))
		b.Add(float64(-i))
	}
	ba, bb := a.RankErrorBound(), b.RankErrorBound()
	a.Merge(b)
	if a.N() != 2000 {
		t.Errorf("merged N %d", a.N())
	}
	if a.RankErrorBound() != ba+bb {
		t.Errorf("merged bound %d, want %d", a.RankErrorBound(), ba+bb)
	}
	// Total represented weight equals N: compaction conserves weight exactly.
	var w int64
	for l, vals := range a.levels {
		w += int64(len(vals)) << l
	}
	if w != a.N() {
		t.Errorf("retained weight %d ≠ N %d", w, a.N())
	}
	a.Compact()
	for l, vals := range a.levels {
		if len(vals) >= 16 && l < len(a.levels)-1 {
			t.Errorf("level %d still over capacity after Compact: %d", l, len(vals))
		}
	}
}

func TestSketchEmptyAndClamp(t *testing.T) {
	s := NewSketch(-3)
	if s.Quantile(0.5) != 0 || s.Rank(1) != 0 || s.N() != 0 {
		t.Error("empty sketch should read zero")
	}
	if s.k < 8 || s.k%2 != 0 {
		t.Errorf("capacity clamp: %d", s.k)
	}
	s.Merge(nil)
	s.Merge(NewSketch(8))
	if s.N() != 0 {
		t.Error("merging empties should stay empty")
	}
	if math.IsNaN(s.Quantile(2)) {
		t.Error("clamped q")
	}
}
