package stats

import "fmt"

// State mirrors: every field of an Accumulator (and its attached Sketch)
// exposed as plain exported data, so partial replication state can cross a
// process boundary and be rebuilt bit-identically on the other side. The
// conversions copy float64 fields verbatim — no rounding, no recomputation —
// which is what lets a coordinator merge worker-produced shard accumulators
// into summaries identical to a single-process run.
//
// FromState is the untrusted direction: it re-validates every structural
// invariant the incremental API maintains by construction (weight
// conservation across the sketch hierarchy, matching observation counts,
// matching level/parity lengths), so a decoder feeding it wire data gets a
// loud error instead of an accumulator that lies.

// SketchState is the full serializable state of a Sketch.
type SketchState struct {
	// K is the per-level buffer capacity.
	K int
	// N is the number of observations the sketch represents.
	N int64
	// Bound is the accumulated rank-error bound (Σ 2^l over compactions).
	Bound int64
	// Parity holds each level's alternating-selection offset.
	Parity []bool
	// Levels holds each level's retained values; Levels[l] values carry
	// weight 2^l.
	Levels [][]float64
}

// State snapshots the sketch. The returned state shares no memory with the
// sketch; mutating one never perturbs the other.
func (s *Sketch) State() SketchState {
	st := SketchState{K: s.k, N: s.n, Bound: s.bound}
	if len(s.parity) > 0 {
		st.Parity = append([]bool(nil), s.parity...)
	}
	if len(s.levels) > 0 {
		st.Levels = make([][]float64, len(s.levels))
		for l, vals := range s.levels {
			st.Levels[l] = append([]float64(nil), vals...)
		}
	}
	return st
}

// SketchFromState rebuilds a sketch from a snapshot, validating the
// structural invariants the Add/Merge path maintains by construction. The
// rebuilt sketch answers every query bit-identically to the snapshotted one
// and keeps absorbing observations and merges.
func SketchFromState(st SketchState) (*Sketch, error) {
	if st.K < 8 || st.K%2 != 0 {
		return nil, fmt.Errorf("stats: sketch capacity must be even and ≥ 8, got %d", st.K)
	}
	if st.N < 0 {
		return nil, fmt.Errorf("stats: sketch observation count must be ≥ 0, got %d", st.N)
	}
	if st.Bound < 0 {
		return nil, fmt.Errorf("stats: sketch error bound must be ≥ 0, got %d", st.Bound)
	}
	if len(st.Parity) != len(st.Levels) {
		return nil, fmt.Errorf("stats: sketch has %d parity entries for %d levels", len(st.Parity), len(st.Levels))
	}
	if len(st.Levels) >= 63 {
		return nil, fmt.Errorf("stats: sketch has %d levels; weights past 2^62 overflow", len(st.Levels))
	}
	var weight int64
	for l, vals := range st.Levels {
		weight += int64(len(vals)) << l
	}
	if weight != st.N {
		return nil, fmt.Errorf("stats: sketch levels carry weight %d for %d observations", weight, st.N)
	}
	s := &Sketch{k: st.K, n: st.N, bound: st.Bound}
	if len(st.Levels) > 0 {
		s.parity = append([]bool(nil), st.Parity...)
		s.levels = make([][]float64, len(st.Levels))
		for l, vals := range st.Levels {
			buf := make([]float64, len(vals), max(len(vals), st.K))
			copy(buf, vals)
			s.levels[l] = buf
		}
	}
	return s, nil
}

// AccumState is the full serializable state of an Accumulator.
type AccumState struct {
	// N is the number of observations folded in.
	N int
	// Mean and M2 are the Welford running mean and sum of squared deviations.
	Mean, M2 float64
	// Min and Max are the exact extremes (meaningful only when N ≥ 1).
	Min, Max float64
	// Sketch is the quantile sketch's state; nil when quantile tracking is
	// disabled.
	Sketch *SketchState
}

// State snapshots the accumulator (deep copy; see Sketch.State).
func (a *Accumulator) State() AccumState {
	st := AccumState{N: a.n, Mean: a.mean, M2: a.m2, Min: a.min, Max: a.max}
	if a.sk != nil {
		sk := a.sk.State()
		st.Sketch = &sk
	}
	return st
}

// AccumulatorFromState rebuilds an accumulator from a snapshot, validating
// the invariants the Add/Merge path maintains by construction. The rebuilt
// accumulator merges and summarizes bit-identically to the snapshotted one.
func AccumulatorFromState(st AccumState) (*Accumulator, error) {
	if st.N < 0 {
		return nil, fmt.Errorf("stats: accumulator observation count must be ≥ 0, got %d", st.N)
	}
	if st.N >= 1 && st.Min > st.Max {
		return nil, fmt.Errorf("stats: accumulator min %g exceeds max %g", st.Min, st.Max)
	}
	a := &Accumulator{n: st.N, mean: st.Mean, m2: st.M2, min: st.Min, max: st.Max}
	if st.Sketch != nil {
		sk, err := SketchFromState(*st.Sketch)
		if err != nil {
			return nil, err
		}
		if sk.n != int64(st.N) {
			return nil, fmt.Errorf("stats: accumulator holds %d observations but its sketch represents %d", st.N, sk.n)
		}
		a.sk = sk
	}
	return a, nil
}
