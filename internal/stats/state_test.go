package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestStateRoundTrip pins the serialization contract: snapshot → rebuild →
// continue adding and merging produces bit-identical summaries to never
// having crossed the state boundary at all.
func TestStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	direct := NewAccumulator(64)
	for i := 0; i < 5000; i++ {
		direct.Add(rng.ExpFloat64() * 12)
	}

	rebuilt, err := AccumulatorFromState(direct.State())
	if err != nil {
		t.Fatalf("round trip rejected a live accumulator: %v", err)
	}
	if rebuilt.Summary() != direct.Summary() {
		t.Fatalf("rebuilt summary diverged:\n got %+v\nwant %+v", rebuilt.Summary(), direct.Summary())
	}

	// The rebuilt accumulator must keep working: add the same tail to both
	// and merge the same partial into both, then compare bit for bit.
	tailA, tailB := rand.New(rand.NewSource(8)), rand.New(rand.NewSource(8))
	other := NewAccumulator(64)
	for i := 0; i < 1000; i++ {
		other.Add(float64(i%17) - 3.5)
	}
	for i := 0; i < 3000; i++ {
		direct.Add(tailA.NormFloat64())
		rebuilt.Add(tailB.NormFloat64())
	}
	direct.Merge(other)
	rebuilt.Merge(other)
	if rebuilt.Summary() != direct.Summary() {
		t.Fatalf("post-rebuild evolution diverged:\n got %+v\nwant %+v", rebuilt.Summary(), direct.Summary())
	}
	if got, want := rebuilt.Quantile(0.75), direct.Quantile(0.75); got != want {
		t.Fatalf("post-rebuild quantile diverged: got %g want %g", got, want)
	}
}

// TestStateDeepCopies pins the aliasing contract: State is a deep copy in
// both directions.
func TestStateDeepCopies(t *testing.T) {
	a := NewAccumulator(8)
	for i := 0; i < 100; i++ {
		a.Add(float64(i))
	}
	st := a.State()
	before := a.Summary()
	st.Sketch.Levels[0][0] = math.Inf(1)
	if a.Summary() != before {
		t.Fatal("mutating the snapshot perturbed the accumulator")
	}
	st = a.State()
	b, err := AccumulatorFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	st.Sketch.Levels[0][0] = math.Inf(1)
	if b.Summary() != before {
		t.Fatal("mutating the snapshot perturbed the rebuilt accumulator")
	}
}

// TestStateEmptyAndSketchless covers the degenerate shapes the replication
// engine produces for unmeasured metrics and empty shards.
func TestStateEmptyAndSketchless(t *testing.T) {
	empty, err := AccumulatorFromState(NewAccumulator(64).State())
	if err != nil {
		t.Fatalf("empty accumulator rejected: %v", err)
	}
	if empty.N() != 0 || empty.Summary() != (Summary{}) {
		t.Fatalf("empty accumulator not empty after round trip: %+v", empty.Summary())
	}

	nosk := NewAccumulator(0)
	nosk.Add(3)
	nosk.Add(5)
	back, err := AccumulatorFromState(nosk.State())
	if err != nil {
		t.Fatalf("sketchless accumulator rejected: %v", err)
	}
	if back.Summary() != nosk.Summary() {
		t.Fatalf("sketchless summary diverged: %+v vs %+v", back.Summary(), nosk.Summary())
	}
}

// TestStateValidation pins the strict-decode side: states that violate the
// invariants the incremental API maintains are rejected, never absorbed.
func TestStateValidation(t *testing.T) {
	valid := func() AccumState {
		a := NewAccumulator(16)
		for i := 0; i < 200; i++ {
			a.Add(float64(i))
		}
		return a.State()
	}
	cases := []struct {
		name   string
		break_ func(*AccumState)
	}{
		{"negative n", func(st *AccumState) { st.N = -1 }},
		{"min above max", func(st *AccumState) { st.Min, st.Max = 5, 1 }},
		{"sketch count mismatch", func(st *AccumState) { st.Sketch.N++ }},
		{"odd capacity", func(st *AccumState) { st.Sketch.K = 9 }},
		{"tiny capacity", func(st *AccumState) { st.Sketch.K = 4 }},
		{"negative bound", func(st *AccumState) { st.Sketch.Bound = -1 }},
		{"parity length mismatch", func(st *AccumState) { st.Sketch.Parity = st.Sketch.Parity[:len(st.Sketch.Parity)-1] }},
		{"weight mismatch", func(st *AccumState) {
			st.Sketch.Levels[0] = st.Sketch.Levels[0][:len(st.Sketch.Levels[0])-1]
		}},
		{"level explosion", func(st *AccumState) {
			st.Sketch.Levels = make([][]float64, 64)
			st.Sketch.Parity = make([]bool, 64)
		}},
	}
	for _, tc := range cases {
		st := valid()
		tc.break_(&st)
		if _, err := AccumulatorFromState(st); err == nil {
			t.Errorf("%s: corrupted state accepted", tc.name)
		}
	}
	if _, err := AccumulatorFromState(valid()); err != nil {
		t.Fatalf("pristine state rejected: %v", err)
	}
}
