package stats

import "sort"

// Sketch is a mergeable quantile sketch with a guaranteed rank-error bound:
// a KLL-style compactor hierarchy, derandomized with Munro–Paterson
// alternating selection so the retained set is a pure function of the input
// sequence — the property internal/mc's bit-identical-summaries contract
// needs (a randomized KLL would make summaries depend on sketch rng state).
//
// Level ℓ holds values that each stand for 2^ℓ original observations. Add
// appends at level 0; a full level sorts its buffer and promotes every other
// element to the level above (a compaction), discarding the rest. One
// compaction at level ℓ perturbs the rank of any query point by at most 2^ℓ,
// and the sketch counts exactly that: RankErrorBound returns Σ 2^ℓ over the
// compactions actually performed, so
//
//	|Rank(x) − true rank of x| ≤ RankErrorBound()   for every x
//
// is a self-certifying guarantee (the sketch_test verifies it against exact
// ranks on 10⁶ samples). With per-level capacity k the bound works out to
// ≈ (n/k)·log₂(n/k) — about 2% of n for k = 512 at n = 10⁶ — while retaining
// only k·log₂(n/k) values.
//
// Merge concatenates the hierarchies level-wise without compacting, so a
// merged sketch's quantiles are weighted quantiles of the exact union
// multiset of the inputs' retained values: independent of merge order, at
// memory proportional to the number of sketches merged (O(shards) in the
// replication engine, replacing the old pooled reservoir which had no error
// bound). Compact re-bounds the memory afterwards, at the cost of an
// order-dependent retained set — the replication engine never compacts after
// merging.
type Sketch struct {
	k      int         // per-level buffer capacity (even, ≥ 8)
	levels [][]float64 // levels[l] holds values of weight 2^l
	parity []bool      // alternating selection offset per level
	n      int64       // observations represented
	bound  int64       // Σ 2^l over compactions performed
}

// NewSketch returns an empty sketch with the given per-level buffer
// capacity. The capacity is clamped to an even value ≥ 8; larger capacities
// buy a tighter rank-error bound at proportional memory.
func NewSketch(capacity int) *Sketch {
	if capacity < 8 {
		capacity = 8
	}
	capacity &^= 1
	return &Sketch{k: capacity}
}

// Add offers one observation.
func (s *Sketch) Add(x float64) {
	s.n++
	if len(s.levels) == 0 {
		s.levels = append(s.levels, make([]float64, 0, s.k))
		s.parity = append(s.parity, false)
	}
	s.levels[0] = append(s.levels[0], x)
	if len(s.levels[0]) >= s.k {
		s.compactFrom(0)
	}
}

// compactFrom cascades compactions upward from level l while buffers are at
// or over capacity.
func (s *Sketch) compactFrom(l int) {
	for ; l < len(s.levels) && len(s.levels[l]) >= s.k; l++ {
		s.compactLevel(l)
	}
}

// compactLevel sorts level l and promotes alternate elements to level l+1 at
// doubled weight. The starting parity flips on every compaction of the same
// level, so successive compactions' rank perturbations partially cancel in
// practice; the accounted bound (2^l per compaction) does not rely on the
// cancellation. An odd element count keeps the sorted maximum at level l so
// the promoted run is even and total weight is conserved exactly.
func (s *Sketch) compactLevel(l int) {
	buf := s.levels[l]
	if len(buf) < 2 {
		return
	}
	sort.Float64s(buf)
	var keep []float64
	if len(buf)%2 == 1 {
		keep = append(keep, buf[len(buf)-1])
		buf = buf[:len(buf)-1]
	}
	if l+1 == len(s.levels) {
		s.levels = append(s.levels, make([]float64, 0, s.k))
		s.parity = append(s.parity, false)
	}
	start := 0
	if s.parity[l] {
		start = 1
	}
	s.parity[l] = !s.parity[l]
	for i := start; i < len(buf); i += 2 {
		s.levels[l+1] = append(s.levels[l+1], buf[i])
	}
	s.levels[l] = append(s.levels[l][:0], keep...)
	s.bound += int64(1) << l
}

// Merge folds another sketch into this one by level-wise concatenation; o is
// left untouched. No compaction happens, so quantiles read from the merged
// sketch are exactly the weighted quantiles of the union of both retained
// sets — independent of the order sketches are merged in — and the error
// bounds add. Call Compact to re-bound memory if the merged sketch will keep
// absorbing observations.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.n == 0 {
		return
	}
	for l, vals := range o.levels {
		if l == len(s.levels) {
			s.levels = append(s.levels, nil)
			s.parity = append(s.parity, false)
		}
		s.levels[l] = append(s.levels[l], vals...)
	}
	s.n += o.n
	s.bound += o.bound
}

// Compact restores the per-level capacity invariant after merges. It makes
// the retained set depend on the merge order, so callers that need
// merge-order-independent quantiles (internal/mc) read before compacting.
// Unlike the Add-path cascade it sweeps every level: a merge can leave
// over-capacity buffers above an under-capacity level 0.
func (s *Sketch) Compact() {
	for l := 0; l < len(s.levels); l++ {
		if len(s.levels[l]) >= s.k {
			s.compactLevel(l)
		}
	}
}

// N returns the number of observations the sketch represents.
func (s *Sketch) N() int64 { return s.n }

// RankErrorBound returns the guaranteed maximum absolute error of Rank (and
// therefore of the rank of any Quantile answer), in observations. It grows
// only when compactions discard information: a sketch that has never
// compacted is exact.
func (s *Sketch) RankErrorBound() int64 { return s.bound }

// Retained reports how many values the sketch currently holds, across all
// levels.
func (s *Sketch) Retained() int {
	total := 0
	for _, vals := range s.levels {
		total += len(vals)
	}
	return total
}

// Rank estimates the number of observations ≤ x. The estimate is within
// RankErrorBound of the true count.
func (s *Sketch) Rank(x float64) int64 {
	var rank int64
	for l, vals := range s.levels {
		w := int64(1) << l
		for _, v := range vals {
			if v <= x {
				rank += w
			}
		}
	}
	return rank
}

// Quantile returns a retained value whose estimated rank brackets q·N
// (q clamped to [0, 1]); 0 for an empty sketch. The answer's true rank is
// within RankErrorBound + the answer's own weight of q·N.
func (s *Sketch) Quantile(q float64) float64 {
	return s.Quantiles(q)[0]
}

// Quantiles answers several quantile queries over one flatten-and-sort pass
// of the retained set — the summary path asks for median/P90/P99 together,
// and re-sorting per query would triple that cost.
func (s *Sketch) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	items, weights := s.sorted()
	if len(items) == 0 {
		return out
	}
	for k, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		target := q * float64(s.n)
		var cum float64
		out[k] = items[len(items)-1]
		for i, v := range items {
			cum += float64(weights[i])
			if cum >= target {
				out[k] = v
				break
			}
		}
	}
	return out
}

// sorted flattens the hierarchy into value-sorted parallel slices of values
// and weights.
func (s *Sketch) sorted() ([]float64, []int64) {
	total := s.Retained()
	if total == 0 {
		return nil, nil
	}
	items := make([]float64, 0, total)
	weights := make([]int64, 0, total)
	for l, vals := range s.levels {
		w := int64(1) << l
		for _, v := range vals {
			items = append(items, v)
			weights = append(weights, w)
		}
	}
	idx := make([]int, total)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return items[idx[a]] < items[idx[b]] })
	sv := make([]float64, total)
	sw := make([]int64, total)
	for i, j := range idx {
		sv[i], sw[i] = items[j], weights[j]
	}
	return sv, sw
}
