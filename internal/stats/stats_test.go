package stats

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Min != 5 || s.Max != 5 || s.Median != 5 || s.Std != 0 {
		t.Errorf("single summary: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !approx(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", s.Mean)
	}
	// Sample std with n−1: Σ(x−5)² = 32, 32/7 ≈ 4.571, √ ≈ 2.138.
	if !approx(s.Std, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("Std = %g", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("range [%g, %g]", s.Min, s.Max)
	}
	if !approx(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %g, want 4.5", s.Median)
	}
	if s.CI95Lo >= s.Mean || s.CI95Hi <= s.Mean {
		t.Errorf("CI [%g, %g] does not bracket the mean", s.CI95Lo, s.CI95Hi)
	}
}

func TestSummarizeMedianOdd(t *testing.T) {
	if m := Summarize([]float64{9, 1, 5}).Median; m != 5 {
		t.Errorf("odd median = %g, want 5", m)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestSummaryString(t *testing.T) {
	if Summarize([]float64{1, 2}).String() == "" {
		t.Error("empty String")
	}
}

func TestOLSExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 3 + 2x
	slope, intercept, r2 := OLS(x, y)
	if !approx(slope, 2, 1e-12) || !approx(intercept, 3, 1e-12) || !approx(r2, 1, 1e-12) {
		t.Errorf("OLS = (%g, %g, %g), want (2, 3, 1)", slope, intercept, r2)
	}
}

func TestOLSNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x, y []float64
	for i := 0; i < 500; i++ {
		xv := float64(i)
		x = append(x, xv)
		y = append(y, 1.5*xv-4+rng.NormFloat64()*3)
	}
	slope, intercept, r2 := OLS(x, y)
	if !approx(slope, 1.5, 0.02) {
		t.Errorf("slope = %g, want ≈ 1.5", slope)
	}
	if !approx(intercept, -4, 2) {
		t.Errorf("intercept = %g, want ≈ −4", intercept)
	}
	if r2 < 0.99 {
		t.Errorf("r² = %g, want ≈ 1", r2)
	}
}

func TestOLSDegenerate(t *testing.T) {
	if s, i, r := OLS([]float64{1}, []float64{2}); s != 0 || i != 0 || r != 0 {
		t.Error("single point should yield zeros")
	}
	if s, _, _ := OLS([]float64{2, 2, 2}, []float64{1, 2, 3}); s != 0 {
		t.Error("constant x should yield zero slope")
	}
	if s, _, _ := OLS([]float64{1, 2}, []float64{3}); s != 0 {
		t.Error("mismatched lengths should yield zeros")
	}
	// Constant y: perfect horizontal fit.
	if _, _, r2 := OLS([]float64{1, 2, 3}, []float64{4, 4, 4}); r2 != 1 {
		t.Errorf("constant y r² = %g, want 1", r2)
	}
}

func TestLogLogSlopeRecoverosExponent(t *testing.T) {
	// y = 3·x^0.5: log-log slope 0.5 — the √U deficit law.
	var x, y []float64
	for _, v := range []float64{100, 1000, 10000, 100000} {
		x = append(x, v)
		y = append(y, 3*math.Sqrt(v))
	}
	slope, r2 := LogLogSlope(x, y)
	if !approx(slope, 0.5, 1e-9) || !approx(r2, 1, 1e-9) {
		t.Errorf("LogLogSlope = (%g, %g), want (0.5, 1)", slope, r2)
	}
}

func TestLogLogSlopeSkipsNonPositive(t *testing.T) {
	slope, _ := LogLogSlope([]float64{-1, 10, 100, 1000}, []float64{5, 1, 10, 100})
	if !approx(slope, 1, 1e-9) {
		t.Errorf("slope = %g, want 1 after skipping the negative point", slope)
	}
}

func TestRatioSeries(t *testing.T) {
	got := RatioSeries([]float64{4, 9, 5}, []float64{2, 3, 0})
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("RatioSeries = %v", got)
	}
	if got := RatioSeries([]float64{1, 2, 3}, []float64{1}); len(got) != 1 {
		t.Errorf("length mismatch handling: %v", got)
	}
}
