// Package stats provides the small statistical toolkit the experiments use:
// summaries with confidence intervals for Monte-Carlo runs, and least-squares
// fits for measuring the exponents and coefficients of deficit curves.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N              int
	Mean           float64
	Std            float64 // sample standard deviation (n−1)
	Min, Max       float64
	Median         float64
	P90, P99       float64 // upper-tail quantiles (tail-risk views)
	SE             float64 // standard error of the mean
	CI95Lo, CI95Hi float64 // normal-approximation 95% interval for the mean
}

// Summarize computes a Summary. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(n-1))
		s.SE = s.Std / math.Sqrt(float64(n))
	}
	s.CI95Lo = s.Mean - 1.96*s.SE
	s.CI95Hi = s.Mean + 1.96*s.SE
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	s.P90 = orderStat(sorted, 0.9)
	s.P99 = orderStat(sorted, 0.99)
	return s
}

// orderStat returns the smallest value whose rank is ≥ q·n in a sorted
// sample — the same convention the Sketch uses, so exact and sketched
// summaries agree on what "P99" means.
func orderStat(sorted []float64, q float64) float64 {
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g [%.4g, %.4g]", s.N, s.Mean, 1.96*s.SE, s.Min, s.Max)
}

// OLS fits y = intercept + slope·x by ordinary least squares and returns the
// coefficient of determination r². It requires at least two points with
// non-constant x; otherwise it returns zeros.
func OLS(x, y []float64) (slope, intercept, r2 float64) {
	n := len(x)
	if n != len(y) || n < 2 {
		return 0, 0, 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2
}

// LogLogSlope fits log(y) against log(x) and returns the power-law exponent —
// the tool for verifying that deficits scale like √U. Points with
// non-positive coordinates are skipped.
func LogLogSlope(x, y []float64) (slope, r2 float64) {
	var lx, ly []float64
	for i := range x {
		if i < len(y) && x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	s, _, r := OLS(lx, ly)
	return s, r
}

// RatioSeries returns element-wise a[i]/b[i], skipping pairs with b[i] = 0.
func RatioSeries(a, b []float64) []float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if b[i] != 0 {
			out = append(out, a[i]/b[i])
		}
	}
	return out
}
