// Package now simulates the network of workstations the paper's schedules
// live in: a fleet of machines whose owners lend idle time under the
// draconian contract, each described by an owner model that samples
// cycle-stealing contracts (usable lifespan U, interrupt bound p) and an
// interrupt temperament.
//
// This is the substitution for the physical NOW of the 1990s testbed (see
// DESIGN.md §4 item 1): the scheduling model is architecture-independent, so
// a simulated fleet exercises exactly the code paths the analysis governs.
// The cluster driver runs stations concurrently on a bounded worker pool —
// stations are independent, which is the parallelism the domain actually has.
package now

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/task"
)

// Contract is one cycle-stealing opportunity offered by a workstation owner:
// the guaranteed lifespan and the interrupt allowance of §2.1.
type Contract struct {
	U quant.Tick
	P int
}

// OwnerModel samples the contracts a workstation owner offers and the
// interrupter that plays the owner during the opportunity.
type OwnerModel interface {
	// Sample draws the next contract. rng is owned by the caller's station.
	Sample(rng *rand.Rand) Contract
	// Interrupter builds the owner's in-opportunity behavior for a contract.
	Interrupter(rng *rand.Rand, c Contract) sim.Interrupter
	// Name labels the model in reports.
	Name() string
}

// Office models a nine-to-five owner: moderately long idle stretches
// (meetings, lunch) with a couple of possible returns, interrupting at
// exponentially distributed times.
type Office struct {
	MeanIdle quant.Tick // mean usable lifespan
	MaxP     int        // interrupt allowance per contract
}

// Sample implements OwnerModel.
func (o Office) Sample(rng *rand.Rand) Contract {
	u := quant.Tick(rng.ExpFloat64()*float64(o.MeanIdle)) + 1
	return Contract{U: u, P: o.MaxP}
}

// Interrupter implements OwnerModel: returns come as a Poisson stream with
// mean spacing half the lifespan — interruptions are likely but not certain.
func (o Office) Interrupter(rng *rand.Rand, c Contract) sim.Interrupter {
	return &adversary.Poisson{Rng: rng, Mean: float64(c.U) / 2}
}

// Name implements OwnerModel.
func (o Office) Name() string { return "office" }

// Laptop models the paper's motivating case: a machine that can be unplugged
// at any moment. Short lifespans, a single fatal interrupt, uniformly placed.
type Laptop struct {
	MeanIdle quant.Tick
}

// Sample implements OwnerModel.
func (l Laptop) Sample(rng *rand.Rand) Contract {
	u := quant.Tick(rng.ExpFloat64()*float64(l.MeanIdle)) + 1
	return Contract{U: u, P: 1}
}

// Interrupter implements OwnerModel.
func (l Laptop) Interrupter(rng *rand.Rand, c Contract) sim.Interrupter {
	return &adversary.Random{Rng: rng, Prob: 0.8}
}

// Name implements OwnerModel.
func (l Laptop) Name() string { return "laptop" }

// Overnight models lab machines lent for a fixed nightly window with a small
// chance of an early-morning return.
type Overnight struct {
	Window quant.Tick
}

// Sample implements OwnerModel.
func (o Overnight) Sample(rng *rand.Rand) Contract {
	return Contract{U: o.Window, P: 1}
}

// Interrupter implements OwnerModel.
func (o Overnight) Interrupter(rng *rand.Rand, c Contract) sim.Interrupter {
	return &adversary.Random{Rng: rng, Prob: 0.15}
}

// Name implements OwnerModel.
func (o Overnight) Name() string { return "overnight" }

// Malicious wraps any owner model with worst-case in-opportunity behavior:
// contracts are sampled from the base model, but the owner plays the
// equalization-damage heuristic. Used to measure guaranteed-style floors on
// fleet throughput.
type Malicious struct {
	Base  OwnerModel
	Setup quant.Tick
}

// Sample implements OwnerModel.
func (m Malicious) Sample(rng *rand.Rand) Contract { return m.Base.Sample(rng) }

// Interrupter implements OwnerModel.
func (m Malicious) Interrupter(rng *rand.Rand, c Contract) sim.Interrupter {
	return adversary.GreedyEqualization{C: m.Setup}
}

// Name implements OwnerModel.
func (m Malicious) Name() string { return "malicious(" + m.Base.Name() + ")" }

// Workstation is one machine in the fleet.
type Workstation struct {
	ID    int
	Owner OwnerModel
	Setup quant.Tick // per-period communication setup cost c to this machine
}

// SchedulerFactory builds a scheduler for a specific contract on a specific
// workstation (schedules depend on U, p and c).
type SchedulerFactory func(ws Workstation, c Contract) (model.EpisodeScheduler, error)

// MixedFleet builds the standard heterogeneous NOW used by the farm
// experiments (E11, E12) and the fleet-mode CLIs: offices, laptops and
// overnight lab machines round-robin, all with setup cost c. Keeping the
// owner mix in one place keeps CLI output comparable with the experiment
// tables.
func MixedFleet(stations int, c quant.Tick) []Workstation {
	fleet := make([]Workstation, stations)
	for i := range fleet {
		switch i % 3 {
		case 0:
			fleet[i] = Workstation{ID: i, Owner: Office{MeanIdle: 250 * c, MaxP: 2}, Setup: c}
		case 1:
			fleet[i] = Workstation{ID: i, Owner: Laptop{MeanIdle: 100 * c}, Setup: c}
		default:
			fleet[i] = Workstation{ID: i, Owner: Overnight{Window: 400 * c}, Setup: c}
		}
	}
	return fleet
}

// StationResult aggregates one workstation's simulated opportunities.
type StationResult struct {
	Station        int
	Opportunities  int
	LifespanTicks  quant.Tick
	Work           quant.Tick
	TaskWork       quant.Tick
	TasksCompleted int
	Interrupts     int
	IdleTicks      quant.Tick
	KilledTicks    quant.Tick
	Err            error
}

// FleetResult aggregates a whole cluster run.
type FleetResult struct {
	Stations []StationResult
	Work     quant.Tick
	Lifespan quant.Tick
	TaskWork quant.Tick
	Tasks    int
}

// Utilization is banked work divided by offered lifespan, the fleet-level
// figure of merit.
func (f FleetResult) Utilization() float64 {
	if f.Lifespan == 0 {
		return 0
	}
	return float64(f.Work) / float64(f.Lifespan)
}

// Fleet is a collection of workstations driven over a horizon of
// opportunities.
type Fleet struct {
	Stations []Workstation
	// OpportunitiesPerStation is how many contracts each station runs.
	OpportunitiesPerStation int
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
}

// Run simulates every station's opportunities concurrently. Each station gets
// a deterministic rng derived from seed and its ID, so runs are reproducible
// regardless of scheduling order. If tasksPer is non-nil, it supplies each
// station's private task bag.
func (f Fleet) Run(factory SchedulerFactory, seed int64, tasksPer func(ws Workstation) *task.Bag) (FleetResult, error) {
	if len(f.Stations) == 0 {
		return FleetResult{}, fmt.Errorf("now: empty fleet")
	}
	n := f.OpportunitiesPerStation
	if n < 1 {
		n = 1
	}
	workers := f.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(f.Stations) {
		workers = len(f.Stations)
	}

	results := make([]StationResult, len(f.Stations))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				results[idx] = f.runStation(f.Stations[idx], n, factory, seed, tasksPer)
			}
		}()
	}
	for idx := range f.Stations {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	var out FleetResult
	out.Stations = results
	for _, r := range results {
		if r.Err != nil {
			return out, fmt.Errorf("now: station %d: %w", r.Station, r.Err)
		}
		out.Work += r.Work
		out.Lifespan += r.LifespanTicks
		out.TaskWork += r.TaskWork
		out.Tasks += r.TasksCompleted
	}
	return out, nil
}

func (f Fleet) runStation(ws Workstation, n int, factory SchedulerFactory, seed int64, tasksPer func(Workstation) *task.Bag) StationResult {
	res := StationResult{Station: ws.ID}
	rng := rand.New(rand.NewSource(seed ^ (int64(ws.ID)+1)*0x5851F42D4C957F2D))
	var bag *task.Bag
	if tasksPer != nil {
		bag = tasksPer(ws)
	}
	for i := 0; i < n; i++ {
		contract := ws.Owner.Sample(rng)
		if contract.U < 1 {
			continue
		}
		s, err := factory(ws, contract)
		if err != nil {
			res.Err = err
			return res
		}
		adv := ws.Owner.Interrupter(rng, contract)
		cfg := sim.Config{}
		if bag != nil {
			// Assign only when non-nil: a nil *task.Bag stored in the
			// TaskSource interface would not compare equal to nil.
			cfg.Bag = bag
		}
		r, err := sim.Run(s, adv, sim.Opportunity{U: contract.U, P: contract.P, C: ws.Setup}, cfg)
		if err != nil {
			res.Err = err
			return res
		}
		res.Opportunities++
		res.LifespanTicks += contract.U
		res.Work += r.Work
		res.TaskWork += r.TaskWork
		res.TasksCompleted += r.TasksCompleted
		res.Interrupts += r.Interrupts
		res.IdleTicks += r.IdleTicks
		res.KilledTicks += r.KilledTicks
	}
	return res
}
