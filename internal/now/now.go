// Package now composes workstations (internal/station) into the network of
// workstations the paper's schedules live in: a fleet of machines whose
// owners lend idle time under the draconian contract. (Availability traces
// — recording runs and replaying them — live in the public trace package
// and the fleet facade.)
//
// The model types (Contract, OwnerModel, Workstation, the owner
// temperaments, MixedFleet) live in internal/station and are aliased here,
// so fleet code keeps reading in the domain's vocabulary. The station-driving
// loop itself lives in internal/farm — the repo's single production engine —
// and Fleet is a thin adapter over it: Fleet.Run is farm.Farm.RunPool on a
// PrivatePools layout (each station drains only its own bag, so per-station
// results are a pure function of (seed, station) and the whole FleetResult
// is bit-identical at any worker count), and Fleet.Replicate stacks that
// inside internal/mc's seed-stream contract.
package now

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"cyclesteal/internal/farm"
	"cyclesteal/internal/mc"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/station"
	"cyclesteal/internal/stats"
	"cyclesteal/internal/task"
)

// The NOW model vocabulary, re-exported from internal/station (the types
// moved down a layer so the farm engine and this package can share them
// without an import cycle).
type (
	// Contract is one cycle-stealing opportunity offered by an owner.
	Contract = station.Contract
	// OwnerModel samples contracts and plays the owner's interrupts.
	OwnerModel = station.OwnerModel
	// Workstation is one machine in the fleet.
	Workstation = station.Workstation
	// SchedulerFactory builds a scheduler per (workstation, contract).
	SchedulerFactory = station.SchedulerFactory
	// Office models a nine-to-five owner.
	Office = station.Office
	// Laptop models a machine that can be unplugged at any moment.
	Laptop = station.Laptop
	// Overnight models lab machines lent for a fixed nightly window.
	Overnight = station.Overnight
	// Malicious wraps an owner model with worst-case interrupt behavior.
	Malicious = station.Malicious
)

// MixedFleet builds the standard heterogeneous NOW used by the farm
// experiments (E11, E12) and the fleet-mode CLIs.
func MixedFleet(stations int, c quant.Tick) []Workstation {
	return station.MixedFleet(stations, c)
}

// StationResult aggregates one workstation's simulated opportunities.
type StationResult struct {
	Station        int
	Opportunities  int
	LifespanTicks  quant.Tick
	Work           quant.Tick
	TaskWork       quant.Tick
	TasksCompleted int
	Interrupts     int
	IdleTicks      quant.Tick
	KilledTicks    quant.Tick
}

// FleetResult aggregates a whole cluster run.
type FleetResult struct {
	Stations []StationResult
	Work     quant.Tick
	Lifespan quant.Tick
	TaskWork quant.Tick
	Tasks    int
}

// Utilization is banked work divided by offered lifespan, the fleet-level
// figure of merit.
func (f FleetResult) Utilization() float64 {
	if f.Lifespan == 0 {
		return 0
	}
	return float64(f.Work) / float64(f.Lifespan)
}

// Fleet is a collection of workstations driven over a horizon of
// opportunities — the survey view of a NOW: every station plays out all its
// contracts (no shared job to exhaust), optionally each against a private
// task bag.
type Fleet struct {
	Stations []Workstation
	// OpportunitiesPerStation is how many contracts each station runs.
	OpportunitiesPerStation int
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// DisableEpisodeMemo turns off the shared engine's per-station episode
	// cache — results are bit-identical either way (the cache serves pure
	// (p, L) functions); the switch exists for benchmarking and the tests
	// that pin the equivalence.
	DisableEpisodeMemo bool
	// Progress and ProgressInterval pass through to the shared engine's
	// wall-clock observer (see farm.Farm.Progress): with per-station private
	// bags, Completed counts tasks whose completing opportunity has ended,
	// fleet-wide. Observing never affects results.
	Progress         func(farm.Progress)
	ProgressInterval time.Duration
}

// farm binds the fleet onto the shared engine.
func (f Fleet) farm() farm.Farm {
	return farm.Farm{
		Stations:                f.Stations,
		OpportunitiesPerStation: f.OpportunitiesPerStation,
		Workers:                 f.Workers,
		DisableEpisodeMemo:      f.DisableEpisodeMemo,
		Progress:                f.Progress,
		ProgressInterval:        f.ProgressInterval,
	}
}

// pools builds the degenerate per-station task pool backing a run. It is a
// pure function of the fleet (tasksPer sees only the workstation), which is
// what keeps Run deterministic at any worker count.
func (f Fleet) pools(tasksPer func(ws Workstation) *task.Bag) *farm.PrivatePools {
	if tasksPer == nil {
		return farm.NewPrivatePools(nil)
	}
	bags := make([]*task.Bag, len(f.Stations))
	for i, ws := range f.Stations {
		bags[i] = tasksPer(ws)
	}
	return farm.NewPrivatePools(bags)
}

// Run simulates every station's opportunities on the farm engine
// (farm.Farm.RunPool over private per-station bags). Each station draws its
// contracts from station.RNG(seed, ID) and touches no shared task state, so
// the entire FleetResult — not just the aggregates — is bit-identical at any
// Workers setting. If tasksPer is non-nil, it supplies each station's
// private task bag. When several stations fail, the returned error joins
// every station's failure, in station order. Cancelling ctx stops every
// station at its next opportunity boundary and returns ctx.Err().
func (f Fleet) Run(ctx context.Context, factory SchedulerFactory, seed int64, tasksPer func(ws Workstation) *task.Bag) (FleetResult, error) {
	if len(f.Stations) == 0 {
		return FleetResult{}, fmt.Errorf("now: empty fleet")
	}
	res, err := f.farm().RunPool(ctx, f.pools(tasksPer), factory, seed)
	if err != nil {
		return FleetResult{}, err
	}
	out := FleetResult{Stations: make([]StationResult, len(res.Stations))}
	for i, rep := range res.Stations {
		out.Stations[i] = StationResult{
			Station:        rep.Station,
			Opportunities:  rep.Opportunities,
			LifespanTicks:  rep.LifespanTicks,
			Work:           rep.FluidWork,
			TaskWork:       rep.TaskWork,
			TasksCompleted: rep.TasksCompleted,
			Interrupts:     rep.Interrupts,
			IdleTicks:      rep.IdleTicks,
			KilledTicks:    rep.KilledTicks,
		}
		out.Work += rep.FluidWork
		out.Lifespan += rep.LifespanTicks
		out.TaskWork += rep.TaskWork
		out.Tasks += rep.TasksCompleted
	}
	return out, nil
}

// Fleet replication metric indexes: the order of the summaries Replicate
// returns.
const (
	FleetMetricWork        = iota // fluid work banked fleet-wide, ticks
	FleetMetricLifespan           // lifespan offered fleet-wide, ticks
	FleetMetricUtilization        // work / lifespan, in [0, 1]
	FleetMetricTaskWork           // completed task duration fleet-wide, ticks
	FleetMetricTasks              // tasks completed fleet-wide
	FleetMetricInterrupts         // interrupts fleet-wide
	FleetMetricKilledTicks        // lifespan destroyed by draconian kills, ticks
	NumFleetMetrics
)

// Replicate replays the fleet survey cfg.Trials times on the internal/mc
// replication engine and returns one summary per metric, indexed by the
// FleetMetric* constants. Trial i derives its fleet seed from the engine's
// deterministic stream for cfg.Seed+i; the worker budget splits via
// mc.SplitWorkers into trials outside and stations inside (Run is
// bit-identical at any inner worker count), so the summaries are
// bit-identical at any cfg.Workers. tasksPer, when non-nil, is invoked fresh
// for every (trial, station) and must depend only on the workstation.
func (f Fleet) Replicate(ctx context.Context, factory SchedulerFactory, cfg mc.Config, tasksPer func(ws Workstation) *task.Bag) ([]stats.Summary, error) {
	cfg, inner := mc.SplitConfig(cfg)
	return mc.RunVec(ctx, cfg, NumFleetMetrics, f.trialVec(ctx, factory, inner, tasksPer))
}

// trialVec builds the one survey trial closure every fleet replication —
// whole-run or shard-subset — executes, so the distributed and
// single-process paths cannot drift apart.
func (f Fleet) trialVec(ctx context.Context, factory SchedulerFactory, inner int, tasksPer func(ws Workstation) *task.Bag) mc.VecFunc {
	inst := f
	inst.Workers = inner
	inst.Progress = nil // per-trial snapshots are not study progress
	return func(rng *rand.Rand) ([]float64, error) {
		res, err := inst.Run(ctx, factory, rng.Int63(), tasksPer)
		if err != nil {
			return nil, err
		}
		var interrupts int
		var killed quant.Tick
		for _, s := range res.Stations {
			interrupts += s.Interrupts
			killed += s.KilledTicks
		}
		out := make([]float64, NumFleetMetrics)
		out[FleetMetricWork] = float64(res.Work)
		out[FleetMetricLifespan] = float64(res.Lifespan)
		out[FleetMetricUtilization] = res.Utilization()
		out[FleetMetricTaskWork] = float64(res.TaskWork)
		out[FleetMetricTasks] = float64(res.Tasks)
		out[FleetMetricInterrupts] = float64(interrupts)
		out[FleetMetricKilledTicks] = float64(killed)
		return out, nil
	}
}

// ReplicateShards runs just the named mc shards of the survey study and
// returns their partial accumulators: the same trial closure Replicate
// drives, over exactly the trials those shards own, so a complete cover
// merged by mc.MergeShards reproduces the single-process summaries bit for
// bit wherever each subset ran.
func (f Fleet) ReplicateShards(ctx context.Context, factory SchedulerFactory, cfg mc.Config, tasksPer func(ws Workstation) *task.Bag, shardIDs []int) ([]mc.ShardAccums, error) {
	cfg, inner := mc.SplitConfig(cfg)
	fn := f.trialVec(ctx, factory, inner, tasksPer)
	return mc.RunVecShards(ctx, cfg, NumFleetMetrics, nil,
		func(rng *rand.Rand, _ any) ([]float64, error) { return fn(rng) }, shardIDs)
}
