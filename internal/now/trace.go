package now

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"cyclesteal/internal/quant"
	"cyclesteal/internal/station"
)

// TraceEntry is one recorded cycle-stealing opportunity in an availability
// trace: which station offered it, the contract, and when the owner actually
// interrupted (absolute elapsed offsets within the opportunity). It is the
// synthetic stand-in for the workstation-usage traces a 1990s NOW deployment
// would have collected.
type TraceEntry struct {
	Station    int
	U          quant.Tick
	P          int
	Interrupts []quant.Tick
}

// traceSalt decorrelates the trace generator's per-station streams from the
// contract streams the engines draw for the same (seed, station ID).
const traceSalt = 0x517CC1B727220A95

// GenerateTrace samples a synthetic availability trace: n opportunities per
// station, with owner-return times drawn as a Poisson stream of the given
// mean spacing, truncated to at most the contract's interrupt allowance.
func GenerateTrace(stations []Workstation, nPer int, meanReturn float64, seed int64) []TraceEntry {
	var out []TraceEntry
	for _, ws := range stations {
		rng := station.RNG(seed^traceSalt, ws.ID)
		for i := 0; i < nPer; i++ {
			contract := ws.Owner.Sample(rng)
			e := TraceEntry{Station: ws.ID, U: contract.U, P: contract.P}
			if meanReturn > 0 {
				at := quant.Tick(0)
				for len(e.Interrupts) < contract.P {
					at += quant.Tick(rng.ExpFloat64()*meanReturn) + 1
					if at > contract.U {
						break
					}
					e.Interrupts = append(e.Interrupts, at)
				}
			}
			out = append(out, e)
		}
	}
	return out
}

// WriteTraceCSV encodes a trace as CSV rows:
// station,U,p,interrupt1;interrupt2;…
func WriteTraceCSV(w io.Writer, trace []TraceEntry) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"station", "lifespan", "interrupt_bound", "interrupts"}); err != nil {
		return err
	}
	for _, e := range trace {
		ints := ""
		for i, t := range e.Interrupts {
			if i > 0 {
				ints += ";"
			}
			ints += strconv.FormatInt(int64(t), 10)
		}
		row := []string{
			strconv.Itoa(e.Station),
			strconv.FormatInt(int64(e.U), 10),
			strconv.Itoa(e.P),
			ints,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTraceCSV decodes a trace written by WriteTraceCSV.
func ReadTraceCSV(r io.Reader) ([]TraceEntry, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("now: reading trace: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("now: empty trace")
	}
	var out []TraceEntry
	for i, rec := range records[1:] { // skip header
		if len(rec) != 4 {
			return nil, fmt.Errorf("now: trace row %d has %d fields, want 4", i+2, len(rec))
		}
		station, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("now: trace row %d station: %w", i+2, err)
		}
		u, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("now: trace row %d lifespan: %w", i+2, err)
		}
		p, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("now: trace row %d interrupt bound: %w", i+2, err)
		}
		e := TraceEntry{Station: station, U: quant.Tick(u), P: p}
		if rec[3] != "" {
			for _, part := range splitSemis(rec[3]) {
				t, err := strconv.ParseInt(part, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("now: trace row %d interrupts: %w", i+2, err)
				}
				e.Interrupts = append(e.Interrupts, quant.Tick(t))
			}
		}
		out = append(out, e)
	}
	return out, nil
}

func splitSemis(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == ';' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// Validate checks a trace for well-formed entries.
func ValidateTrace(trace []TraceEntry) error {
	for i, e := range trace {
		if e.U < 1 {
			return fmt.Errorf("now: trace entry %d has lifespan %d", i, e.U)
		}
		if e.P < 0 {
			return fmt.Errorf("now: trace entry %d has interrupt bound %d", i, e.P)
		}
		if len(e.Interrupts) > e.P {
			return fmt.Errorf("now: trace entry %d has %d interrupts, bound %d", i, len(e.Interrupts), e.P)
		}
		prev := quant.Tick(0)
		for _, t := range e.Interrupts {
			if t <= prev || t > e.U {
				return fmt.Errorf("now: trace entry %d has ill-ordered interrupt %d", i, t)
			}
			prev = t
		}
	}
	return nil
}
