package now

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/task"
)

func testFleet(nStations int, owner OwnerModel) Fleet {
	stations := make([]Workstation, nStations)
	for i := range stations {
		stations[i] = Workstation{ID: i, Owner: owner, Setup: 10}
	}
	return Fleet{Stations: stations, OpportunitiesPerStation: 5}
}

func equalizedFactory(ws Workstation, c Contract) (model.EpisodeScheduler, error) {
	return sched.NewAdaptiveEqualized(ws.Setup)
}

func TestOwnerModelsSampleSanely(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	models := []OwnerModel{
		Office{MeanIdle: 5000, MaxP: 3},
		Laptop{MeanIdle: 2000},
		Overnight{Window: 30000},
		Malicious{Base: Laptop{MeanIdle: 2000}, Setup: 10},
	}
	for _, m := range models {
		if m.Name() == "" {
			t.Errorf("%T: empty name", m)
		}
		for i := 0; i < 100; i++ {
			c := m.Sample(rng)
			if c.U < 1 {
				t.Fatalf("%s sampled lifespan %d", m.Name(), c.U)
			}
			if c.P < 0 {
				t.Fatalf("%s sampled interrupt bound %d", m.Name(), c.P)
			}
			if m.Interrupter(rng, c) == nil {
				t.Fatalf("%s returned nil interrupter", m.Name())
			}
		}
	}
}

func TestOvernightIsDeterministicWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	o := Overnight{Window: 12345}
	for i := 0; i < 10; i++ {
		if c := o.Sample(rng); c.U != 12345 || c.P != 1 {
			t.Fatalf("sample = %+v", c)
		}
	}
}

func TestFleetRunAggregates(t *testing.T) {
	f := testFleet(8, Office{MeanIdle: 5000, MaxP: 2})
	res, err := f.Run(equalizedFactory, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stations) != 8 {
		t.Fatalf("stations = %d", len(res.Stations))
	}
	var work, lifespan quant.Tick
	for _, s := range res.Stations {
		if s.Err != nil {
			t.Fatalf("station %d: %v", s.Station, s.Err)
		}
		if s.Opportunities == 0 {
			t.Errorf("station %d ran no opportunities", s.Station)
		}
		work += s.Work
		lifespan += s.LifespanTicks
	}
	if work != res.Work || lifespan != res.Lifespan {
		t.Errorf("aggregation mismatch: %d/%d vs %d/%d", work, lifespan, res.Work, res.Lifespan)
	}
	if res.Work < 1 {
		t.Error("fleet banked no work")
	}
	u := res.Utilization()
	if u <= 0 || u >= 1 {
		t.Errorf("utilization = %g, want within (0, 1)", u)
	}
}

func TestFleetRunDeterministicAcrossWorkerCounts(t *testing.T) {
	base := testFleet(10, Laptop{MeanIdle: 3000})
	for _, workers := range []int{1, 4, 32} {
		f := base
		f.Workers = workers
		res, err := f.Run(equalizedFactory, 7, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref := base
		ref.Workers = 1
		want, err := ref.Run(equalizedFactory, 7, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Work != want.Work || res.Lifespan != want.Lifespan {
			t.Errorf("workers=%d: (%d, %d) differs from single-worker (%d, %d)",
				workers, res.Work, res.Lifespan, want.Work, want.Lifespan)
		}
	}
}

func TestFleetRunWithTasks(t *testing.T) {
	f := testFleet(4, Overnight{Window: 20000})
	res, err := f.Run(equalizedFactory, 3, func(ws Workstation) *task.Bag {
		return task.NewBag(task.Uniform(500, 10, 100, int64(ws.ID)))
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks == 0 {
		t.Error("no tasks completed fleet-wide")
	}
	if res.TaskWork > res.Work {
		t.Errorf("task work %d exceeds fluid work %d", res.TaskWork, res.Work)
	}
}

func TestFleetEmpty(t *testing.T) {
	if _, err := (Fleet{}).Run(equalizedFactory, 1, nil); err == nil {
		t.Error("empty fleet accepted")
	}
}

func TestFleetFactoryErrorPropagates(t *testing.T) {
	f := testFleet(2, Laptop{MeanIdle: 1000})
	_, err := f.Run(func(ws Workstation, c Contract) (model.EpisodeScheduler, error) {
		return nil, errTest
	}, 1, nil)
	if err == nil {
		t.Error("factory error swallowed")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestMaliciousFleetUnderperformsBenign(t *testing.T) {
	benign := testFleet(6, Overnight{Window: 20000})
	benignRes, err := benign.Run(equalizedFactory, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	malicious := testFleet(6, Malicious{Base: Overnight{Window: 20000}, Setup: 10})
	maliciousRes, err := malicious.Run(equalizedFactory, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if maliciousRes.Work >= benignRes.Work {
		t.Errorf("malicious owners (%d) should cost work vs benign (%d)", maliciousRes.Work, benignRes.Work)
	}
}

// --- trace round trip ---------------------------------------------------------

func TestGenerateTraceValid(t *testing.T) {
	stations := testFleet(3, Office{MeanIdle: 4000, MaxP: 3}).Stations
	trace := GenerateTrace(stations, 4, 800, 5)
	if len(trace) != 12 {
		t.Fatalf("trace length = %d, want 12", len(trace))
	}
	if err := ValidateTrace(trace); err != nil {
		t.Fatal(err)
	}
	interrupted := 0
	for _, e := range trace {
		interrupted += len(e.Interrupts)
	}
	if interrupted == 0 {
		t.Error("trace has no interrupts at all; mean return 800 over ≈4000-tick lifespans should interrupt often")
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	stations := testFleet(2, Laptop{MeanIdle: 3000}).Stations
	trace := GenerateTrace(stations, 3, 500, 9)
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, trace); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(trace) {
		t.Fatalf("round trip length %d vs %d", len(back), len(trace))
	}
	for i := range trace {
		a, b := trace[i], back[i]
		if a.Station != b.Station || a.U != b.U || a.P != b.P || len(a.Interrupts) != len(b.Interrupts) {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Interrupts {
			if a.Interrupts[j] != b.Interrupts[j] {
				t.Fatalf("entry %d interrupt %d differs", i, j)
			}
		}
	}
}

func TestReadTraceCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"station,lifespan,interrupt_bound,interrupts\nx,5,1,\n",
		"station,lifespan,interrupt_bound,interrupts\n1,x,1,\n",
		"station,lifespan,interrupt_bound,interrupts\n1,5,x,\n",
		"station,lifespan,interrupt_bound,interrupts\n1,5,1,x\n",
	}
	for i, in := range cases {
		if _, err := ReadTraceCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed trace accepted", i)
		}
	}
}

func TestValidateTraceErrors(t *testing.T) {
	bad := []TraceEntry{
		{Station: 0, U: 0, P: 1},
	}
	if err := ValidateTrace(bad); err == nil {
		t.Error("zero lifespan accepted")
	}
	bad = []TraceEntry{{Station: 0, U: 100, P: 0, Interrupts: []quant.Tick{5}}}
	if err := ValidateTrace(bad); err == nil {
		t.Error("interrupt count beyond bound accepted")
	}
	bad = []TraceEntry{{Station: 0, U: 100, P: 2, Interrupts: []quant.Tick{50, 40}}}
	if err := ValidateTrace(bad); err == nil {
		t.Error("ill-ordered interrupts accepted")
	}
	bad = []TraceEntry{{Station: 0, U: 100, P: 2, Interrupts: []quant.Tick{50, 200}}}
	if err := ValidateTrace(bad); err == nil {
		t.Error("interrupt beyond lifespan accepted")
	}
}
