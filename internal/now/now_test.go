package now

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"cyclesteal/internal/mc"
	"cyclesteal/internal/model"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/stats"
	"cyclesteal/internal/task"
)

func testFleet(nStations int, owner OwnerModel) Fleet {
	stations := make([]Workstation, nStations)
	for i := range stations {
		stations[i] = Workstation{ID: i, Owner: owner, Setup: 10}
	}
	return Fleet{Stations: stations, OpportunitiesPerStation: 5}
}

func equalizedFactory(ws Workstation, c Contract) (model.EpisodeScheduler, error) {
	return sched.NewAdaptiveEqualized(ws.Setup)
}

func TestFleetRunAggregates(t *testing.T) {
	f := testFleet(8, Office{MeanIdle: 5000, MaxP: 2})
	res, err := f.Run(context.Background(), equalizedFactory, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stations) != 8 {
		t.Fatalf("stations = %d", len(res.Stations))
	}
	var work, lifespan quant.Tick
	for _, s := range res.Stations {
		if s.Opportunities == 0 {
			t.Errorf("station %d ran no opportunities", s.Station)
		}
		work += s.Work
		lifespan += s.LifespanTicks
	}
	if work != res.Work || lifespan != res.Lifespan {
		t.Errorf("aggregation mismatch: %d/%d vs %d/%d", work, lifespan, res.Work, res.Lifespan)
	}
	if res.Work < 1 {
		t.Error("fleet banked no work")
	}
	u := res.Utilization()
	if u <= 0 || u >= 1 {
		t.Errorf("utilization = %g, want within (0, 1)", u)
	}
}

// Acceptance pin for the unification: the whole FleetResult — every
// per-station field, not just the aggregates — is bit-identical at
// workers=1 and workers=8, with and without private task bags.
func TestFleetRunBitIdenticalAcrossWorkerCounts(t *testing.T) {
	tasksPer := func(ws Workstation) *task.Bag {
		return task.NewBag(task.Uniform(300, 10, 100, int64(ws.ID)))
	}
	for _, bags := range []func(Workstation) *task.Bag{nil, tasksPer} {
		base := testFleet(10, Laptop{MeanIdle: 3000})
		base.Workers = 1
		want, err := base.Run(context.Background(), equalizedFactory, 7, bags)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{4, 8, 32} {
			f := base
			f.Workers = workers
			got, err := f.Run(context.Background(), equalizedFactory, 7, bags)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("workers=%d (bags=%v): FleetResult diverged from workers=1:\n%+v\nvs\n%+v",
					workers, bags != nil, got, want)
			}
		}
	}
}

func TestFleetRunWithTasks(t *testing.T) {
	f := testFleet(4, Overnight{Window: 20000})
	res, err := f.Run(context.Background(), equalizedFactory, 3, func(ws Workstation) *task.Bag {
		return task.NewBag(task.Uniform(500, 10, 100, int64(ws.ID)))
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks == 0 {
		t.Error("no tasks completed fleet-wide")
	}
	if res.TaskWork > res.Work {
		t.Errorf("task work %d exceeds fluid work %d", res.TaskWork, res.Work)
	}
}

// Private bags never pool: even with every bag drained mid-run, stations
// keep playing all their opportunities (fluid mode keeps banking work).
func TestFleetRunsAllOpportunitiesDespiteEmptyBags(t *testing.T) {
	f := testFleet(3, Overnight{Window: 20000})
	f.OpportunitiesPerStation = 7
	res, err := f.Run(context.Background(), equalizedFactory, 5, func(ws Workstation) *task.Bag {
		return task.NewBag(task.Fixed(1, 10)) // one tiny task, done in the first period
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Stations {
		if s.Opportunities != 7 {
			t.Errorf("station %d played %d opportunities, want all 7", s.Station, s.Opportunities)
		}
	}
}

func TestFleetEmpty(t *testing.T) {
	if _, err := (Fleet{}).Run(context.Background(), equalizedFactory, 1, nil); err == nil {
		t.Error("empty fleet accepted")
	}
}

func TestFleetFactoryErrorPropagates(t *testing.T) {
	f := testFleet(2, Laptop{MeanIdle: 1000})
	_, err := f.Run(context.Background(), func(ws Workstation, c Contract) (model.EpisodeScheduler, error) {
		return nil, errTest
	}, 1, nil)
	if err == nil {
		t.Error("factory error swallowed")
	}
}

// Bugfix regression: the old station pool returned on the first failing
// station, dropping the rest. Every failure must surface, joined in station
// order like farm.Run.
func TestFleetRunJoinsAllStationErrors(t *testing.T) {
	f := testFleet(4, Laptop{MeanIdle: 1000})
	f.Workers = 2
	_, err := f.Run(context.Background(), func(ws Workstation, c Contract) (model.EpisodeScheduler, error) {
		if ws.ID%2 == 1 {
			return nil, errTest
		}
		return sched.NewAdaptiveEqualized(ws.Setup)
	}, 1, nil)
	if err == nil {
		t.Fatal("factory errors swallowed")
	}
	msg := err.Error()
	for _, want := range []string{"station 1", "station 3"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error missing %q: %v", want, msg)
		}
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestMaliciousFleetUnderperformsBenign(t *testing.T) {
	benign := testFleet(6, Overnight{Window: 20000})
	benignRes, err := benign.Run(context.Background(), equalizedFactory, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	malicious := testFleet(6, Malicious{Base: Overnight{Window: 20000}, Setup: 10})
	maliciousRes, err := malicious.Run(context.Background(), equalizedFactory, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if maliciousRes.Work >= benignRes.Work {
		t.Errorf("malicious owners (%d) should cost work vs benign (%d)", maliciousRes.Work, benignRes.Work)
	}
}

// --- replication ---------------------------------------------------------------

func TestFleetReplicateDeterministicAcrossWorkers(t *testing.T) {
	f := testFleet(6, Office{MeanIdle: 800, MaxP: 2})
	tasksPer := func(ws Workstation) *task.Bag {
		return task.NewBag(task.Exponential(100, 30, int64(ws.ID)))
	}
	run := func(workers int) []stats.Summary {
		sums, err := f.Replicate(context.Background(), equalizedFactory, mc.Config{Trials: 6, Seed: 9, Workers: workers}, tasksPer)
		if err != nil {
			t.Fatal(err)
		}
		return sums
	}
	a, b := run(1), run(8)
	if len(a) != NumFleetMetrics || len(b) != NumFleetMetrics {
		t.Fatalf("metric counts %d/%d, want %d", len(a), len(b), NumFleetMetrics)
	}
	for m := range a {
		if a[m] != b[m] {
			t.Errorf("metric %d differs across worker budgets:\n  w1: %+v\n  w8: %+v", m, a[m], b[m])
		}
	}
}

func TestFleetReplicateMetricSanity(t *testing.T) {
	f := testFleet(4, Office{MeanIdle: 600, MaxP: 2})
	sums, err := f.Replicate(context.Background(), equalizedFactory, mc.Config{Trials: 5, Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	util := sums[FleetMetricUtilization]
	if util.Min < 0 || util.Max > 1 {
		t.Errorf("utilization outside [0,1]: %+v", util)
	}
	if sums[FleetMetricWork].Mean <= 0 {
		t.Errorf("fleet banked no work: %+v", sums[FleetMetricWork])
	}
	if sums[FleetMetricLifespan].Min <= 0 {
		t.Errorf("no lifespan offered: %+v", sums[FleetMetricLifespan])
	}
	if sums[FleetMetricTasks].Mean != 0 || sums[FleetMetricTaskWork].Mean != 0 {
		t.Errorf("fluid-only fleet reported task work: %+v", sums[FleetMetricTasks])
	}
	if sums[FleetMetricWork].N != 5 {
		t.Errorf("trial count %d, want 5", sums[FleetMetricWork].N)
	}
}

func TestFleetReplicateRejectsBadConfig(t *testing.T) {
	f := testFleet(2, Office{MeanIdle: 100, MaxP: 1})
	if _, err := f.Replicate(context.Background(), equalizedFactory, mc.Config{Trials: 0, Seed: 1}, nil); err == nil {
		t.Error("trials=0 accepted")
	}
}

// Episode memoization must be invisible: the whole FleetResult is
// bit-identical with the per-station episode cache enabled vs disabled, at
// Workers 1 and 8, with and without private task bags.
func TestFleetRunMemoOnOffBitIdentical(t *testing.T) {
	tasksPer := func(ws Workstation) *task.Bag {
		return task.NewBag(task.Uniform(200, 10, 80, int64(ws.ID)))
	}
	for _, bags := range []func(Workstation) *task.Bag{nil, tasksPer} {
		base := testFleet(12, Office{MeanIdle: 2500, MaxP: 2})
		base.Workers = 1
		want, err := base.Run(context.Background(), equalizedFactory, 13, bags)
		if err != nil {
			t.Fatal(err)
		}
		for _, memoOff := range []bool{false, true} {
			for _, workers := range []int{1, 8} {
				f := base
				f.Workers = workers
				f.DisableEpisodeMemo = memoOff
				got, err := f.Run(context.Background(), equalizedFactory, 13, bags)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("memoOff=%v workers=%d (bags=%v): FleetResult diverged",
						memoOff, workers, bags != nil)
				}
			}
		}
	}
}

// TestFleetReplicateShardsBitIdentical pins the distribution contract on the
// survey path: disjoint shard subsets, run in any order, merge to the exact
// Replicate summaries.
func TestFleetReplicateShardsBitIdentical(t *testing.T) {
	f := testFleet(6, Office{MeanIdle: 600, MaxP: 2})
	tasksPer := func(ws Workstation) *task.Bag {
		return task.NewBag(task.Exponential(60, 30, int64(ws.ID)))
	}
	cfg := mc.Config{Trials: 70, Seed: 4}
	want, err := f.Replicate(context.Background(), equalizedFactory, cfg, tasksPer)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 3} {
		var shards []mc.ShardAccums
		for p := parts - 1; p >= 0; p-- {
			var ids []int
			for s := p; s < mc.Shards; s += parts {
				ids = append(ids, s)
			}
			part, err := f.ReplicateShards(context.Background(), equalizedFactory, cfg, tasksPer, ids)
			if err != nil {
				t.Fatal(err)
			}
			shards = append(shards, part...)
		}
		sums, err := mc.MergeShards(NumFleetMetrics, shards)
		if err != nil {
			t.Fatal(err)
		}
		for m := range want {
			if sums[m] != want[m] {
				t.Errorf("parts=%d metric %d diverged:\n got %+v\nwant %+v", parts, m, sums[m], want[m])
			}
		}
	}
}
