package tab

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Table X. Sample", "U/c", "W_opt", "W_na")
	t.Row(100, 81.37, "n/a")
	t.Row(1000.0, 936.0, 900.25)
	t.Note("c = %d", 1)
	return t
}

func TestRowFormatting(t *testing.T) {
	tb := sample()
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "100" {
		t.Errorf("int cell = %q", tb.Rows[0][0])
	}
	if tb.Rows[0][1] != "81.37" {
		t.Errorf("float cell = %q", tb.Rows[0][1])
	}
	if tb.Rows[1][0] != "1000" {
		t.Errorf("whole float cell = %q, want trimmed", tb.Rows[1][0])
	}
	if tb.Rows[1][2] != "900.25" {
		t.Errorf("float cell = %q", tb.Rows[1][2])
	}
	if tb.Rows[0][2] != "n/a" {
		t.Errorf("string cell = %q", tb.Rows[0][2])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{3, "3"},
		{-2, "-2"},
		{3.14159, "3.1416"},
		{2.5000, "2.5"},
		{0.0001, "0.0001"},
		{0.00001, "0"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWriteTextAligned(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table X. Sample") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "note: c = 1") {
		t.Error("note missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, rule, 2 rows, note
	if len(lines) != 6 {
		t.Fatalf("line count = %d: %q", len(lines), out)
	}
	// Columns align: the header and data rows have the same column starts.
	if !strings.HasPrefix(lines[1], "U/c ") {
		t.Errorf("header row: %q", lines[1])
	}
	if len(lines[2]) < len(lines[1]) {
		t.Errorf("rule shorter than header: %q vs %q", lines[2], lines[1])
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d", len(records))
	}
	if records[0][0] != "U/c" || records[2][1] != "936" {
		t.Errorf("CSV content wrong: %v", records)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Table
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Title != "Table X. Sample" || len(decoded.Rows) != 2 || len(decoded.Notes) != 1 {
		t.Errorf("JSON round trip: %+v", decoded)
	}
}

func TestRender(t *testing.T) {
	if sample().Render() == "" {
		t.Error("empty Render")
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("empty")
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output for empty table")
	}
}

func TestRowWithOtherTypes(t *testing.T) {
	tb := New("t", "a", "b")
	tb.Row(int64(7), true)
	if tb.Rows[0][0] != "7" || tb.Rows[0][1] != "true" {
		t.Errorf("row = %v", tb.Rows[0])
	}
}
