// Package tab renders the experiment tables — the reproduction's equivalent
// of the paper's Table 1 and Table 2 — as aligned text, CSV, or JSON.
package tab

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid with a header row and free-form footnotes.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// New creates a table with the given title and column names.
func New(title string, cols ...string) *Table {
	return &Table{Title: title, Header: cols}
}

// Row appends a row, formatting each cell with %v. Numeric convenience:
// float64 cells are rendered with up to 4 significant decimals, trimmed.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// FormatFloat renders a float compactly: integers without decimals, others
// with four decimals, trailing zeros trimmed.
func FormatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (header first; title and notes omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders the table as a JSON object.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Render returns the text rendering as a string, for logs and tests.
func (t *Table) Render() string {
	var b strings.Builder
	if err := t.WriteText(&b); err != nil {
		return ""
	}
	return b.String()
}
