// Sharedjob: one data-parallel computation farmed across a whole NOW — the
// full setting of the paper's title. A genomics group has 40,000 sequence-
// alignment tasks and no cluster budget; they steal cycles from 16 machines
// whose owners come and go. Stations drain one shared sharded task pool
// concurrently; killed periods return their in-flight tasks to the pool so
// another machine can pick them up.
//
// The example drives the public fleet facade end to end — caller-units
// configuration, a shared job, per-policy comparison of completion and of
// how much borrowed time interrupts destroyed — the farm-level view of the
// paper's guarantee.
//
// Run: go run ./examples/sharedjob
package main

import (
	"context"
	"fmt"
	"log"

	"cyclesteal/fleet"
)

func main() {
	const setup = 5.0 // seconds per work hand-off

	// 10 office machines and 6 laptops; the zero values are the standard
	// experiment temperaments (office: mean idle 250 setups, 2 interrupts;
	// laptop: mean idle 100 setups, unplugged without warning).
	var owners []fleet.Owner
	for i := 0; i < 10; i++ {
		owners = append(owners, fleet.Office{})
	}
	for i := 0; i < 6; i++ {
		owners = append(owners, fleet.Laptop{})
	}

	// 40k alignment tasks, exponentially distributed around 2 setup costs.
	job := fleet.Job{Tasks: fleet.ExponentialTasks(40000, 2*setup, 99)}

	policies := []struct {
		name   string
		policy fleet.Policy
	}{
		{"one period per visit", fleet.Policy{Name: "single"}},
		{"fixed 125s chunks", fleet.Policy{Name: "fixedchunk", Chunk: 25 * setup}},
		{"adaptive equalized", fleet.Policy{Name: "equalized"}},
	}

	fmt.Printf("job: %d tasks; fleet: %d stations (c = %g s)\n\n", len(job.Tasks), len(owners), setup)
	fmt.Printf("%-22s %12s %12s %12s %12s %10s\n",
		"policy", "tasks done", "completion", "killed(c)", "interrupts", "imbalance")
	for _, p := range policies {
		f, err := fleet.New(fleet.Config{
			Stations:      len(owners),
			Setup:         setup,
			Owners:        owners,
			Policy:        p.policy,
			Opportunities: 40,
			Seed:          2026,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := f.Run(context.Background(), job)
		if err != nil {
			log.Fatal(err)
		}
		var killed float64
		for _, s := range res.Stations {
			killed += s.Killed
		}
		fmt.Printf("%-22s %12d %11.1f%% %12.0f %12d %10.2f\n",
			p.name, res.TasksCompleted, 100*res.CompletionFraction(),
			killed/setup, res.Interrupts, res.Imbalance())
	}

	fmt.Println("\nsingle-period visits lose whole opportunities to one badly timed interrupt;")
	fmt.Println("the adaptive schedule caps every loss at ≈√(2c·residual), so the same fleet")
	fmt.Println("finishes more of the job with the same borrowed time.")
}
