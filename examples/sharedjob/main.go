// Sharedjob: one data-parallel computation farmed across a whole NOW — the
// full setting of the paper's title. A genomics group has 40,000 sequence-
// alignment tasks and no cluster budget; they steal cycles from 16 machines
// whose owners come and go. Stations drain one shared bag concurrently;
// killed periods return their in-flight tasks to the bag so another machine
// can pick them up.
//
// The example compares period-sizing policies by job completion and by how
// much borrowed lifespan interrupts destroyed — the farm-level view of the
// paper's guarantee.
//
// Run: go run ./examples/sharedjob
package main

import (
	"fmt"
	"log"

	"cyclesteal/internal/farm"
	"cyclesteal/internal/model"
	"cyclesteal/internal/now"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/task"
)

func main() {
	const setup = quant.Tick(100)

	var stations []now.Workstation
	for i := 0; i < 10; i++ {
		stations = append(stations, now.Workstation{ID: i, Owner: now.Office{MeanIdle: 250 * setup, MaxP: 2}, Setup: setup})
	}
	for i := 10; i < 16; i++ {
		stations = append(stations, now.Workstation{ID: i, Owner: now.Laptop{MeanIdle: 100 * setup}, Setup: setup})
	}

	// 40k alignment tasks, exponentially distributed around 2c.
	job := farm.Job{Tasks: task.Exponential(40000, float64(2*setup), 99)}
	fmt.Printf("job: %d tasks, %d ticks of work; fleet: %d stations (c = %d ticks)\n\n",
		len(job.Tasks), job.TotalWork(), len(stations), setup)

	policies := []struct {
		name    string
		factory now.SchedulerFactory
	}{
		{"one period per visit", func(ws now.Workstation, c now.Contract) (model.EpisodeScheduler, error) {
			return sched.SinglePeriod{}, nil
		}},
		{"fixed 25c chunks", func(ws now.Workstation, c now.Contract) (model.EpisodeScheduler, error) {
			return sched.FixedChunk{T: 25 * ws.Setup}, nil
		}},
		{"adaptive equalized", func(ws now.Workstation, c now.Contract) (model.EpisodeScheduler, error) {
			return sched.NewAdaptiveEqualized(ws.Setup)
		}},
	}

	fmt.Printf("%-22s %12s %12s %12s %12s %10s\n",
		"policy", "tasks done", "completion", "killed(c)", "interrupts", "imbalance")
	for _, p := range policies {
		f := farm.Farm{Stations: stations, OpportunitiesPerStation: 40}
		res, err := f.Run(job, p.factory, 2026)
		if err != nil {
			log.Fatal(err)
		}
		var killed quant.Tick
		for _, s := range res.Stations {
			killed += s.KilledTicks
		}
		fmt.Printf("%-22s %12d %11.1f%% %12d %12d %10.2f\n",
			p.name, res.TasksCompleted, 100*res.CompletionFraction(job),
			killed/setup, res.Interrupts, res.Imbalance())
	}

	fmt.Println("\nsingle-period visits lose whole opportunities to one badly timed interrupt;")
	fmt.Println("the adaptive schedule caps every loss at ≈√(2c·residual), so the same fleet")
	fmt.Println("finishes more of the job with the same borrowed time.")
}
