// Paramsweep: how should chunk sizes scale with the communication setup cost
// and the owner's interrupt allowance? This example sweeps c and p for a
// fixed one-hour opportunity and prints the §3.1 guideline parameters next to
// the measured guaranteed output of non-adaptive vs adaptive scheduling —
// the practical sizing table a NOW operator would pin to the wall.
//
// Run: go run ./examples/paramsweep
package main

import (
	"fmt"
	"log"

	"cyclesteal"
)

func main() {
	const lifespan = 3600.0 // one hour, in seconds

	fmt.Println("sizing guide for a 3600 s cycle-stealing opportunity")
	fmt.Println()
	fmt.Printf("%4s %3s | %10s %12s | %12s %12s %10s | %9s\n",
		"c(s)", "p", "m periods", "period (s)", "nonadaptive", "adaptive", "optimal", "adv/nonadv")
	fmt.Println("-------------------------------------------------------------------------------------------")

	for _, c := range []float64{1, 5, 20, 60} {
		for _, p := range []int{1, 2, 4} {
			eng, err := cyclesteal.New(cyclesteal.Opportunity{Lifespan: lifespan, Interrupts: p, Setup: c},
				cyclesteal.WithTicksPerSetup(ticksFor(c)))
			if err != nil {
				log.Fatal(err)
			}
			pred := eng.Predict()

			na, err := eng.NonAdaptive()
			if err != nil {
				log.Fatal(err)
			}
			wNa, err := eng.GuaranteedWork(na)
			if err != nil {
				log.Fatal(err)
			}
			eq, err := eng.AdaptiveEqualized()
			if err != nil {
				log.Fatal(err)
			}
			wEq, err := eng.GuaranteedWork(eq)
			if err != nil {
				log.Fatal(err)
			}
			opt, err := eng.OptimalWork()
			if err != nil {
				log.Fatal(err)
			}

			ratio := 0.0
			if lifespan-wNa > 0 {
				ratio = (lifespan - wNa) / (lifespan - wEq)
			}
			fmt.Printf("%4.0f %3d | %10d %12.1f | %12.1f %12.1f %10.1f | %9.2f\n",
				c, p, pred.NonAdaptivePeriods, pred.NonAdaptivePeriodLength,
				wNa, wEq, opt, ratio)
		}
	}

	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println("  - periods shrink like √(cU/p): costlier hand-offs ⇒ fewer, longer chunks")
	fmt.Println("  - the last column is the deficit ratio (lifespan−W_na)/(lifespan−W_adaptive):")
	fmt.Println("    adaptivity recovers ≈√2× of the work the adversary would otherwise destroy")
	fmt.Println("  - at c = 60 s and p = 4 the opportunity is nearly worthless either way:")
	fmt.Println("    U/c = 60 approaches the zero-work regime (p+1)c of Prop 4.1(c)")
}

// ticksFor picks a grid resolution that keeps the solver's table small for
// large U/c while staying well below the quantization-noise floor.
func ticksFor(c float64) int {
	if c < 5 {
		return 50
	}
	return 100
}
