// Laptopfleet: cluster-scale cycle-stealing — the NOW of the paper's title.
// A department has 24 machines: offices, laptops that can be unplugged at
// any moment, and lab machines lent overnight. A shared bag of data-parallel
// tasks is farmed out to whatever idle time each owner offers.
//
// This example drives the library's NOW substrate (internal/now) directly:
// stations run concurrently on a worker pool, each with its own deterministic
// rng, and the fleet is scored under two scheduling policies — fixed hourly
// chunks vs the paper's adaptive equalization schedule.
//
// Run: go run ./examples/laptopfleet
package main

import (
	"fmt"
	"log"

	"cyclesteal/internal/model"
	"cyclesteal/internal/now"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sched"
	"cyclesteal/internal/task"
)

func main() {
	const setup = quant.Tick(100) // one setup cost = 100 ticks

	// Assemble the fleet: 8 offices, 12 laptops, 4 overnight lab machines.
	var stations []now.Workstation
	add := func(n int, owner now.OwnerModel) {
		for i := 0; i < n; i++ {
			stations = append(stations, now.Workstation{ID: len(stations), Owner: owner, Setup: setup})
		}
	}
	add(8, now.Office{MeanIdle: 360 * setup, MaxP: 3})
	add(12, now.Laptop{MeanIdle: 120 * setup})
	add(4, now.Overnight{Window: 2880 * setup})

	fleet := now.Fleet{Stations: stations, OpportunitiesPerStation: 20}

	policies := []struct {
		name    string
		factory now.SchedulerFactory
	}{
		{"fixed 36c chunks", func(ws now.Workstation, c now.Contract) (model.EpisodeScheduler, error) {
			return sched.FixedChunk{T: 36 * ws.Setup}, nil
		}},
		{"§3.1 non-adaptive", func(ws now.Workstation, c now.Contract) (model.EpisodeScheduler, error) {
			return sched.NewNonAdaptive(c.U, c.P, ws.Setup)
		}},
		{"adaptive equalized", func(ws now.Workstation, c now.Contract) (model.EpisodeScheduler, error) {
			return sched.NewAdaptiveEqualized(ws.Setup)
		}},
	}

	runFleet := func(f now.Fleet, label string) {
		fmt.Printf("%s\n", label)
		fmt.Printf("%-22s %14s %12s %12s %10s\n", "policy", "work (ticks)", "utilization", "tasks done", "interrupts")
		for _, policy := range policies {
			res, err := f.Run(policy.factory, 2024, func(ws now.Workstation) *task.Bag {
				return task.NewBag(task.Exponential(5000, float64(8*setup), int64(ws.ID)))
			})
			if err != nil {
				log.Fatal(err)
			}
			var interrupts int
			for _, s := range res.Stations {
				interrupts += s.Interrupts
			}
			fmt.Printf("%-22s %14d %11.1f%% %12d %10d\n",
				policy.name, res.Work, 100*res.Utilization(), res.Tasks, interrupts)
		}
		fmt.Println()
	}

	fmt.Printf("fleet: %d stations × 20 opportunities each (c = %d ticks)\n\n", len(stations), setup)
	runFleet(fleet, "benign owners (interrupts placed by their daily routines):")

	// The same fleet with owners who interrupt as damagingly as they can —
	// the guaranteed-output regime the paper optimizes for.
	hostile := make([]now.Workstation, len(stations))
	for i, ws := range stations {
		hostile[i] = ws
		hostile[i].Owner = now.Malicious{Base: ws.Owner, Setup: ws.Setup}
	}
	runFleet(now.Fleet{Stations: hostile, OpportunitiesPerStation: 20},
		"malicious owners (same contracts, worst-timed interrupts):")

	fmt.Println("reading the tables: under benign owners every sensible chunking lands within")
	fmt.Println("~1% — the insurance of guaranteed-output scheduling is nearly free. Under")
	fmt.Println("worst-timed interrupts the adaptive equalization policy keeps the most work,")
	fmt.Println("capping each loss at ≈√(2c·residual) — the paper's guarantee in action.")
}
