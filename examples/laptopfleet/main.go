// Laptopfleet: cluster-scale cycle-stealing — the NOW of the paper's title.
// A department has 24 machines: offices, laptops that can be unplugged at
// any moment, and lab machines lent overnight. Each machine works through a
// private slice of a data-parallel task backlog during whatever idle time
// its owner offers.
//
// This example drives the public fleet facade: owner temperaments and
// scheduling policies are named in the caller's own time units (seconds
// here), stations run concurrently on a worker pool, each with its own
// deterministic contract stream, and the fleet is scored under three
// period-sizing policies — fixed chunks vs the paper's guidelines.
//
// Run: go run ./examples/laptopfleet
package main

import (
	"context"
	"fmt"
	"log"

	"cyclesteal/fleet"
)

func main() {
	const setup = 5.0 // seconds per work hand-off

	// Assemble the fleet: 8 offices, 12 laptops, 4 overnight lab machines.
	// Config.Owners lists one temperament per station, in seconds.
	var owners []fleet.Owner
	add := func(n int, o fleet.Owner) {
		for i := 0; i < n; i++ {
			owners = append(owners, o)
		}
	}
	add(8, fleet.Office{MeanIdle: 1800, Interrupts: 3}) // meetings, lunch
	add(12, fleet.Laptop{MeanIdle: 600})                // unplugged without warning
	add(4, fleet.Overnight{Window: 14400})              // lent 9pm–1am

	// Each station gets its own 5000-task slice of the backlog (the Private
	// pool deals the job round-robin): tasks average 40 s.
	job := fleet.Job{Tasks: fleet.ExponentialTasks(5000*len(owners), 40, 7)}

	policies := []fleet.Policy{
		{Name: "fixedchunk", Chunk: 180}, // 3-minute chunks (36 setups)
		{Name: "nonadaptive"},            // §3.1 guideline
		{Name: "equalized"},              // Theorem 4.3 equalization
	}

	runFleet := func(label string, owners []fleet.Owner) {
		fmt.Println(label)
		fmt.Printf("%-22s %14s %12s %12s %10s\n", "policy", "work (s)", "utilization", "tasks done", "interrupts")
		for _, policy := range policies {
			f, err := fleet.New(fleet.Config{
				Stations:      len(owners),
				Setup:         setup,
				Owners:        owners,
				Policy:        policy,
				Opportunities: 20,
				Pool:          fleet.Private,
				Seed:          2024,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := f.Run(context.Background(), job)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-22s %14.0f %11.1f%% %12d %10d\n",
				policyLabel(policy), res.Work, 100*res.Utilization(), res.TasksCompleted, res.Interrupts)
		}
		fmt.Println()
	}

	fmt.Printf("fleet: %d stations × 20 opportunities each (c = %g s)\n\n", len(owners), setup)
	runFleet("benign owners (interrupts placed by their daily routines):", owners)

	// The same fleet with owners who interrupt as damagingly as they can —
	// the guaranteed-output regime the paper optimizes for.
	hostile := make([]fleet.Owner, len(owners))
	for i, o := range owners {
		hostile[i] = fleet.Malicious{Base: o}
	}
	runFleet("malicious owners (same contracts, worst-timed interrupts):", hostile)

	fmt.Println("reading the tables: under benign owners every sensible chunking lands within")
	fmt.Println("~1% — the insurance of guaranteed-output scheduling is nearly free. Under")
	fmt.Println("worst-timed interrupts the adaptive equalization policy keeps the most work,")
	fmt.Println("capping each loss at ≈√(2c·residual) — the paper's guarantee in action.")
}

func policyLabel(p fleet.Policy) string {
	switch p.Name {
	case "fixedchunk":
		return fmt.Sprintf("fixed %.0fs chunks", p.Chunk)
	case "nonadaptive":
		return "§3.1 non-adaptive"
	default:
		return "adaptive equalized"
	}
}
