// Renderfarm: the data-parallel workload of the paper's title, made
// concrete. A 3D animation studio steals overnight cycles on a workstation
// to render frames: most frames are cheap (20 s), hero frames are expensive
// (180 s). Frames are indivisible — if the owner reclaims the machine
// mid-render, the frame in flight is lost.
//
// The example contrasts three plans against both the worst-case owner and a
// realistic early-bird owner, counting *frames delivered*, not just fluid
// seconds — showing how the paper's fluid analysis carries over to real
// task-granular work (and where packing loss appears).
//
// Run: go run ./examples/renderfarm
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cyclesteal"
)

func main() {
	const (
		lifespan = 8 * 3600 // 8 h borrowed overnight, in seconds
		setup    = 30       // scene shipping + frame return, per hand-off
	)
	eng, err := cyclesteal.New(cyclesteal.Opportunity{
		Lifespan:   lifespan,
		Interrupts: 1, // the owner unplugs at most once (it's a laptop)
		Setup:      setup,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The frame queue: 2000 frames, 15% heroes.
	rng := rand.New(rand.NewSource(7))
	frames := make([]float64, 2000)
	for i := range frames {
		if rng.Float64() < 0.15 {
			frames[i] = 180
		} else {
			frames[i] = 20
		}
	}

	plans := []struct {
		name  string
		build func() (cyclesteal.Scheduler, error)
	}{
		{"whole night as one job", func() (cyclesteal.Scheduler, error) { return eng.SinglePeriod(), nil }},
		{"hourly checkpoints", func() (cyclesteal.Scheduler, error) { return eng.FixedChunk(3600), nil }},
		{"paper §3.1 non-adaptive", eng.NonAdaptive},
		{"paper-optimal adaptive", eng.AdaptiveEqualized},
	}

	fmt.Printf("rendering 2000 frames over %d h of borrowed time (c = %d s, ≤1 interrupt)\n\n", lifespan/3600, setup)
	fmt.Printf("%-26s %14s %18s %20s\n", "plan", "guaranteed s", "frames vs worst", "frames vs early-bird")
	for _, plan := range plans {
		s, err := plan.build()
		if err != nil {
			log.Fatal(err)
		}
		floor, worst, err := eng.WorstCase(s)
		if err != nil {
			log.Fatal(err)
		}
		worstRun, err := eng.Simulate(s, worst, cyclesteal.SimOptions{TaskDurations: frames})
		if err != nil {
			log.Fatal(err)
		}
		// Early-bird owner: returns ~2 h early on average.
		earlyRun, err := eng.Simulate(s, eng.PoissonAdversary(6*3600, 11), cyclesteal.SimOptions{TaskDurations: frames})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %14.0f %18d %20d\n", plan.name, floor, worstRun.TasksCompleted, earlyRun.TasksCompleted)
	}

	fmt.Println("\nthe adaptive schedule guarantees within a few frames of the whole-night fluid optimum,")
	fmt.Println("while the one-job plan guarantees nothing and hourly chunks pay ≈√2× more worst-case loss.")
}
