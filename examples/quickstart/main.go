// Quickstart: schedule one cycle-stealing opportunity and see why the
// paper's schedules matter.
//
// Scenario: a colleague lends you their workstation for an hour (3600 s)
// while they're in meetings. They might come back early — up to twice — and
// when they do, whatever is running dies (the draconian contract). Every
// work hand-off costs 5 s of communication setup. How much computation can
// you *guarantee*, no matter how inconveniently they return?
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cyclesteal"
)

func main() {
	eng, err := cyclesteal.New(cyclesteal.Opportunity{
		Lifespan:   3600, // seconds of borrowed time
		Interrupts: 2,    // owner may reclaim twice
		Setup:      5,    // seconds per work hand-off
	})
	if err != nil {
		log.Fatal(err)
	}

	// What the theory predicts before touching the solver.
	pred := eng.Predict()
	fmt.Printf("predictions: optimal ≈ %.0f s of the 3600 s lifespan; naive big chunks lose √2× more\n\n",
		pred.AdaptiveWork)

	// The naive plan: run everything as one job. The owner kills it at the
	// last instant — guaranteed output zero.
	naive, err := eng.GuaranteedWork(eng.SinglePeriod())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s guarantees %7.1f s\n", "one long job", naive)

	// The paper's schedules.
	for _, s := range []struct {
		name  string
		build func() (cyclesteal.Scheduler, error)
	}{
		{"non-adaptive (§3.1)", eng.NonAdaptive},
		{"adaptive guideline (§3.2)", eng.AdaptiveGuideline},
		{"adaptive equalized (Thm 4.3)", eng.AdaptiveEqualized},
	} {
		sch, err := s.build()
		if err != nil {
			log.Fatal(err)
		}
		w, err := eng.GuaranteedWork(sch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s guarantees %7.1f s\n", s.name, w)
	}

	// The exact optimum, from the game solver.
	opt, err := eng.OptimalWork()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s guarantees %7.1f s\n\n", "exact optimum W(2)[U]", opt)

	// Watch the worst case actually happen: extract the minimax adversary
	// and replay it through the simulator.
	eq, err := eng.AdaptiveEqualized()
	if err != nil {
		log.Fatal(err)
	}
	floor, worst, err := eng.WorstCase(eq)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Simulate(eq, worst, cyclesteal.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst-case replay of the equalized schedule:\n")
	fmt.Printf("  banked %.1f s (floor %.1f s) across %d episodes; %d interrupts destroyed %.1f s; %.1f s went to setups\n",
		res.Work, floor, res.Episodes, res.Interrupts, res.KilledTime, res.SetupTime)

	// And a friendly owner for contrast.
	friendly, err := eng.Simulate(eq, eng.PoissonAdversary(1800, 42), cyclesteal.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same schedule, easygoing owner: banked %.1f s\n", friendly.Work)
}
