// Command cstealsweep computes the exact optimal guaranteed output W(p)[U]
// over a (U, p) grid, solving cells concurrently on a worker pool — the bulk
// parameter-study entry point backing capacity-planning questions like "how
// does the guarantee scale as owners get twitchier?".
//
// With -trials > 0 each cell additionally gets a Monte-Carlo column: the
// optimal schedule's expected output against a Poisson owner (mean return
// U/3, the E8 convention), replicated on the internal/mc engine with
// deterministic per-trial seed streams — reproducible for a fixed -seed at
// any -workers setting.
//
// Usage:
//
//	cstealsweep -c 100 -ratios 100,1000,10000 -ps 1,2,4 -workers 8
//	cstealsweep -ratios 100,1000 -ps 1,2 -trials 1000 -seed 7
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"cyclesteal/internal/adversary"
	"cyclesteal/internal/game"
	"cyclesteal/internal/mc"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/stats"
	"cyclesteal/internal/tab"
	"cyclesteal/internal/theory"
)

func main() {
	var (
		c       = flag.Int64("c", 100, "setup cost in ticks (grid resolution)")
		ratios  = flag.String("ratios", "100,1000,10000", "comma-separated U/c ratios")
		ps      = flag.String("ps", "1,2,4", "comma-separated interrupt bounds")
		workers = flag.Int("workers", 0, "worker pool size for cells and trials (0 = GOMAXPROCS)")
		trials  = flag.Int("trials", 0, "Monte-Carlo trials per cell vs a Poisson owner (0 = exact sweep only)")
		seed    = flag.Int64("seed", 1, "base rng seed for the Monte-Carlo trials (trial i uses seed+i)")
		format  = flag.String("format", "text", "output format: text, csv, or json")
	)
	flag.Parse()

	rs, err := parseTicks(*ratios)
	if err != nil {
		fatal(err)
	}
	pl, err := parseInts(*ps)
	if err != nil {
		fatal(err)
	}
	us := make([]quant.Tick, len(rs))
	for i, r := range rs {
		us[i] = r * quant.Tick(*c)
	}

	points := game.Grid(us, pl, quant.Tick(*c))
	results := game.Sweep(points, *workers)

	var mcSums []stats.Summary
	if *trials > 0 {
		var err error
		mcSums, err = sweepMonteCarlo(points, *trials, *seed, *workers)
		if err != nil {
			fatal(err)
		}
	}

	cols := []string{"p", "U/c", "W/c", "W/U %", "deficit coeff", "K_p"}
	if *trials > 0 {
		cols = append(cols, "E[W]/c poisson", "±95%")
	}
	t := tab.New(
		fmt.Sprintf("optimal guaranteed output W(p)[U] (c = %d ticks; %d cells)", *c, len(points)),
		cols...,
	)
	for i, res := range results {
		if res.Err != nil {
			fatal(res.Err)
		}
		uf, cf := float64(res.U), float64(res.C)
		deficit := (uf - float64(res.Value)) / math.Sqrt(2*cf*uf)
		row := []any{res.P, res.U / res.C,
			float64(res.Value) / cf,
			100 * float64(res.Value) / uf,
			deficit,
			theory.OptimalDeficitCoefficient(res.P),
		}
		if *trials > 0 {
			sum := mcSums[i]
			row = append(row, sum.Mean/cf, stats.TCritical95(sum.N-1)*sum.SE/cf)
		}
		t.Row(row...)
	}
	t.Note("deficit coeff = (U−W)/√(2cU); K_p is the equalization prediction it converges to")
	if *trials > 0 {
		t.Note("E[W] = optimal schedule vs Poisson owner (mean return U/3), %d trials on the internal/mc engine", *trials)
	}
	switch *format {
	case "text":
		err = t.WriteText(os.Stdout)
	case "csv":
		err = t.WriteCSV(os.Stdout)
	case "json":
		err = t.WriteJSON(os.Stdout)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

// sweepMonteCarlo replays every cell's optimal schedule against a stochastic
// Poisson owner, trials times per cell on the replication engine. Cells run
// concurrently (each pays its own full game.Solve — Sweep's low-memory value
// rows cannot yield a schedule), with the worker budget split between the
// cell pool and each cell's trial pool so the total stays ≈ workers. The
// solver is dropped as soon as its cell's trials finish, so resident memory
// is one value table per in-flight cell, not per cell.
func sweepMonteCarlo(points []game.SweepPoint, trials int, seed int64, workers int) ([]stats.Summary, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cellPool := workers
	if cellPool > len(points) {
		cellPool = len(points)
	}
	trialWorkers := workers / cellPool
	if trialWorkers < 1 {
		trialWorkers = 1
	}

	sums := make([]stats.Summary, len(points))
	errs := make([]error, len(points))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cellPool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				pt := points[i]
				solver, err := game.Solve(pt.P, pt.U, pt.C)
				if err != nil {
					errs[i] = err
					continue
				}
				s := solver.Scheduler()
				mean := float64(pt.U) / 3
				sums[i], errs[i] = mc.Run(mc.Config{Trials: trials, Seed: seed, Workers: trialWorkers},
					func(rng *rand.Rand) (float64, error) {
						res, err := sim.Run(s, &adversary.Poisson{Rng: rng, Mean: mean}, sim.Opportunity{U: pt.U, P: pt.P, C: pt.C}, sim.Config{})
						if err != nil {
							return 0, err
						}
						return float64(res.Work), nil
					})
			}
		}()
	}
	for i := range points {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cell (U=%d p=%d): %w", points[i].U, points[i].P, err)
		}
	}
	return sums, nil
}

func parseTicks(s string) ([]quant.Tick, error) {
	parts := strings.Split(s, ",")
	out := make([]quant.Tick, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad ratio %q", p)
		}
		out = append(out, quant.Tick(v))
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad interrupt bound %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstealsweep:", err)
	os.Exit(1)
}
