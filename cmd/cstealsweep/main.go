// Command cstealsweep computes the exact optimal guaranteed output W(p)[U]
// over a (U, p) grid, solving cells concurrently on a worker pool — the bulk
// parameter-study entry point backing capacity-planning questions like "how
// does the guarantee scale as owners get twitchier?".
//
// Usage:
//
//	cstealsweep -c 100 -ratios 100,1000,10000 -ps 1,2,4 -workers 8
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"cyclesteal/internal/game"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/tab"
	"cyclesteal/internal/theory"
)

func main() {
	var (
		c       = flag.Int64("c", 100, "setup cost in ticks (grid resolution)")
		ratios  = flag.String("ratios", "100,1000,10000", "comma-separated U/c ratios")
		ps      = flag.String("ps", "1,2,4", "comma-separated interrupt bounds")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		format  = flag.String("format", "text", "output format: text, csv, or json")
	)
	flag.Parse()

	rs, err := parseTicks(*ratios)
	if err != nil {
		fatal(err)
	}
	pl, err := parseInts(*ps)
	if err != nil {
		fatal(err)
	}
	us := make([]quant.Tick, len(rs))
	for i, r := range rs {
		us[i] = r * quant.Tick(*c)
	}

	points := game.Grid(us, pl, quant.Tick(*c))
	results := game.Sweep(points, *workers)

	t := tab.New(
		fmt.Sprintf("optimal guaranteed output W(p)[U] (c = %d ticks; %d cells)", *c, len(points)),
		"p", "U/c", "W/c", "W/U %", "deficit coeff", "K_p",
	)
	for _, res := range results {
		if res.Err != nil {
			fatal(res.Err)
		}
		uf, cf := float64(res.U), float64(res.C)
		deficit := (uf - float64(res.Value)) / math.Sqrt(2*cf*uf)
		t.Row(res.P, res.U/res.C,
			float64(res.Value)/cf,
			100*float64(res.Value)/uf,
			deficit,
			theory.OptimalDeficitCoefficient(res.P),
		)
	}
	t.Note("deficit coeff = (U−W)/√(2cU); K_p is the equalization prediction it converges to")
	switch *format {
	case "text":
		err = t.WriteText(os.Stdout)
	case "csv":
		err = t.WriteCSV(os.Stdout)
	case "json":
		err = t.WriteJSON(os.Stdout)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func parseTicks(s string) ([]quant.Tick, error) {
	parts := strings.Split(s, ",")
	out := make([]quant.Tick, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad ratio %q", p)
		}
		out = append(out, quant.Tick(v))
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad interrupt bound %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstealsweep:", err)
	os.Exit(1)
}
