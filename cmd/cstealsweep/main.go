// Command cstealsweep computes the exact optimal guaranteed output W(p)[U]
// over a (U, p) grid, solving cells concurrently on a worker pool — the bulk
// parameter-study entry point backing capacity-planning questions like "how
// does the guarantee scale as owners get twitchier?".
//
// With -trials > 0 each cell additionally gets a Monte-Carlo column: the
// optimal schedule's expected output against a Poisson owner (mean return
// U/3, the E8 convention), replicated on the internal/mc engine with
// deterministic per-trial seed streams — reproducible for a fixed -seed at
// any -workers setting.
//
// With -fleet N > 1 (and -trials > 0) the Monte-Carlo view scales out: each
// cell farms one shared data-parallel job across N identical stations
// offering the cell's (U, p) contract under Poisson owners, on the
// deterministic two-level farm engine with the bag sharding picked by
// -shards — answering "what does this per-opportunity guarantee compose to
// at fleet size N?" per cell. -clusters/-steallatency split those shards
// into a two-tier topology with latency-priced cross-cluster steals.
//
// With -distribute N (and -fleet, -trials) the fleet-mode study fans out
// across N local worker processes: the cell's contract is restated as a
// public fleet spec (Poisson temperament inside a fixed (U, p) contract,
// the equalization policy in place of the solved optimal schedule) and a
// distrib.Coordinator deals the study's shards to re-execed copies of this
// binary — bit-identical to running the same spec in one process, at any N.
//
// Usage:
//
//	cstealsweep -c 100 -ratios 100,1000,10000 -ps 1,2,4 -workers 8
//	cstealsweep -ratios 100,1000 -ps 1,2 -trials 1000 -seed 7
//	cstealsweep -ratios 100,1000 -ps 1,2 -trials 50 -fleet 500
//	cstealsweep -ratios 1000 -ps 2 -trials 50 -fleet 500 -shards 8 -clusters 2 -steallatency 100
//	cstealsweep -ratios 1000 -ps 2 -trials 200 -fleet 64 -distribute 4
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"cyclesteal/distrib"
	"cyclesteal/fleet"
	"cyclesteal/internal/adversary"
	"cyclesteal/internal/farm"
	"cyclesteal/internal/game"
	"cyclesteal/internal/mc"
	"cyclesteal/internal/model"
	"cyclesteal/internal/now"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/sim"
	"cyclesteal/internal/stats"
	"cyclesteal/internal/tab"
	"cyclesteal/internal/task"
	"cyclesteal/internal/theory"
)

func main() {
	// Hidden worker mode: `cstealsweep -distrib-worker` speaks the distrib
	// wire conversation over stdio until the coordinator closes the pipe.
	// Deliberately not a registered flag — it is the re-exec target of
	// -distribute, not part of the CLI surface.
	if len(os.Args) == 2 && os.Args[1] == "-distrib-worker" {
		if err := distrib.Serve(context.Background(), os.Stdin, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	var (
		c        = flag.Int64("c", 100, "setup cost in ticks (grid resolution)")
		ratios   = flag.String("ratios", "100,1000,10000", "comma-separated U/c ratios")
		ps       = flag.String("ps", "1,2,4", "comma-separated interrupt bounds")
		workers  = flag.Int("workers", 0, "worker pool size for cells and trials (0 = GOMAXPROCS)")
		trials   = flag.Int("trials", 0, "Monte-Carlo trials per cell vs a Poisson owner (0 = exact sweep only)")
		seed     = flag.Int64("seed", 1, "base rng seed for the Monte-Carlo trials (trial i uses seed+i)")
		fleetN   = flag.Int("fleet", 0, "farm a shared job across this many stations per cell (needs -trials; ≤ 1 = single-station MC)")
		shards   = flag.Int("shards", 0, "task-bag shards in fleet mode: 0 = auto, 1 = single shared bag")
		clusters = flag.Int("clusters", 0, "split the fleet-mode shards into this many equal clusters (0 or 1 = flat fleet; needs -fleet)")
		stealLat = flag.Int64("steallatency", 0, "cross-cluster steal latency in ticks for fleet mode (needs -clusters ≥ 2; intra-cluster steals stay free)")
		distProc = flag.Int("distribute", 0, "fan the fleet-mode Monte-Carlo out across this many local worker processes (needs -fleet and -trials; 0 = in-process)")
		format   = flag.String("format", "text", "output format: text, csv, or json")
	)
	flag.Parse()

	if *clusters > 1 && *fleetN <= 1 {
		fatal(fmt.Errorf("-clusters needs -fleet N > 1 (clusters partition the fleet-mode shards)"))
	}
	if *stealLat != 0 && *clusters < 2 {
		fatal(fmt.Errorf("-steallatency needs -clusters ≥ 2 to have a crossing to price"))
	}
	if *distProc < 0 {
		fatal(fmt.Errorf("-distribute must be ≥ 0, got %d", *distProc))
	}
	if *distProc > 0 && (*fleetN <= 1 || *trials <= 0) {
		fatal(fmt.Errorf("-distribute needs -fleet N > 1 and -trials > 0 (it shards the fleet-mode study)"))
	}

	rs, err := parseTicks(*ratios)
	if err != nil {
		fatal(err)
	}
	pl, err := parseInts(*ps)
	if err != nil {
		fatal(err)
	}
	us := make([]quant.Tick, len(rs))
	for i, r := range rs {
		us[i] = r * quant.Tick(*c)
	}

	points := game.Grid(us, pl, quant.Tick(*c))
	results := game.Sweep(points, *workers)

	var mcSums []stats.Summary
	var fleetCells []fleetCell
	if *trials > 0 {
		var err error
		mcSums, err = sweepMonteCarlo(points, *trials, *seed, *workers)
		if err != nil {
			fatal(err)
		}
		if *fleetN > 1 {
			if *distProc > 0 {
				fleetCells, err = sweepFleetDistributed(points, *trials, *seed, *fleetN, *shards, *clusters, quant.Tick(*stealLat), *distProc)
			} else {
				topo := farm.Topology{Clusters: *clusters, CrossLatency: quant.Tick(*stealLat)}
				fleetCells, err = sweepFleet(points, *trials, *seed, *workers, *fleetN, *shards, topo)
			}
			if err != nil {
				fatal(err)
			}
		}
	}

	cols := []string{"p", "U/c", "W/c", "W/U %", "deficit coeff", "K_p"}
	if *trials > 0 {
		cols = append(cols, "E[W]/c poisson", "±95%")
	}
	if fleetCells != nil {
		cols = append(cols, fmt.Sprintf("fleet%d compl %%", *fleetN), "imbalance", "steals")
		if *clusters > 1 {
			cols = append(cols, "in flight")
		}
	}
	t := tab.New(
		fmt.Sprintf("optimal guaranteed output W(p)[U] (c = %d ticks; %d cells)", *c, len(points)),
		cols...,
	)
	for i, res := range results {
		if res.Err != nil {
			fatal(res.Err)
		}
		uf, cf := float64(res.U), float64(res.C)
		deficit := (uf - float64(res.Value)) / math.Sqrt(2*cf*uf)
		row := []any{res.P, res.U / res.C,
			float64(res.Value) / cf,
			100 * float64(res.Value) / uf,
			deficit,
			theory.OptimalDeficitCoefficient(res.P),
		}
		if *trials > 0 {
			sum := mcSums[i]
			row = append(row, sum.Mean/cf, stats.TCritical95(sum.N-1)*sum.SE/cf)
		}
		if fleetCells != nil {
			fc := fleetCells[i]
			row = append(row, 100*fc.completion.Mean, fc.imbalance.Mean, fc.steals.Mean)
			if *clusters > 1 {
				row = append(row, fc.inflight.Mean)
			}
		}
		t.Row(row...)
	}
	t.Note("deficit coeff = (U−W)/√(2cU); K_p is the equalization prediction it converges to")
	if *trials > 0 {
		t.Note("E[W] = optimal schedule vs Poisson owner (mean return U/3), %d trials on the internal/mc engine", *trials)
	}
	if fleetCells != nil {
		t.Note("fleet columns: %d identical stations farm one shared job (a full U/c size-c tasks per station) on the two-level farm engine; completion ≈ the fleet-achievable fraction of the contract, with max/mean balance and cross-queue steals, means over %d trials", *fleetN, *trials)
		if *distProc > 0 {
			t.Note("fleet columns computed distributed across %d worker processes on the public fleet engine: stations schedule with the adaptive equalization policy (not the cell's solved optimal schedule) under a Poisson temperament inside the fixed (U, p) contract — bit-identical to the same spec in one process", *distProc)
		}
		if *clusters > 1 {
			t.Note("topology: %d clusters over the shards, cross-cluster steals priced at %d ticks; with one opportunity per station a priced parcel caught at the final barrier never lands — the in-flight column is that loss", *clusters, *stealLat)
		}
	}
	switch *format {
	case "text":
		err = t.WriteText(os.Stdout)
	case "csv":
		err = t.WriteCSV(os.Stdout)
	case "json":
		err = t.WriteJSON(os.Stdout)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

// sweepMonteCarlo replays every cell's optimal schedule against a stochastic
// Poisson owner, trials times per cell on the replication engine. Cells run
// concurrently (each pays its own full game.Solve — Sweep's low-memory value
// rows cannot yield a schedule), with the worker budget split between the
// cell pool and each cell's trial pool so the total stays ≈ workers. The
// solver is dropped as soon as its cell's trials finish, so resident memory
// is one value table per in-flight cell, not per cell.
func sweepMonteCarlo(points []game.SweepPoint, trials int, seed int64, workers int) ([]stats.Summary, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cellPool := workers
	if cellPool > len(points) {
		cellPool = len(points)
	}
	trialWorkers := workers / cellPool
	if trialWorkers < 1 {
		trialWorkers = 1
	}

	sums := make([]stats.Summary, len(points))
	errs := make([]error, len(points))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cellPool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				pt := points[i]
				solver, err := game.Solve(pt.P, pt.U, pt.C)
				if err != nil {
					errs[i] = err
					continue
				}
				s := solver.Scheduler()
				mean := float64(pt.U) / 3
				sums[i], errs[i] = mc.Run(context.Background(), mc.Config{Trials: trials, Seed: seed, Workers: trialWorkers},
					func(rng *rand.Rand) (float64, error) {
						res, err := sim.Run(s, &adversary.Poisson{Rng: rng, Mean: mean}, sim.Opportunity{U: pt.U, P: pt.P, C: pt.C}, sim.Config{})
						if err != nil {
							return 0, err
						}
						return float64(res.Work), nil
					})
			}
		}()
	}
	for i := range points {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cell (U=%d p=%d): %w", points[i].U, points[i].P, err)
		}
	}
	return sums, nil
}

// fleetCell is one sweep cell's fleet-composition view.
type fleetCell struct {
	completion stats.Summary
	imbalance  stats.Summary
	steals     stats.Summary
	inflight   stats.Summary
}

// fixedOwner offers the sweep cell's exact contract every time and plays the
// E8 Poisson temperament (mean return U/3) inside it.
type fixedOwner struct {
	u quant.Tick
	p int
}

func (o fixedOwner) Sample(*rand.Rand) now.Contract { return now.Contract{U: o.u, P: o.p} }

func (o fixedOwner) Interrupter(rng *rand.Rand, c now.Contract) sim.Interrupter {
	return &adversary.Poisson{Rng: rng, Mean: float64(c.U) / 3}
}

func (o fixedOwner) Name() string { return "fixed+poisson" }

// sweepFleet farms each cell's contract across fleet identical stations: the
// cell's exactly optimal schedule (shared read-only across stations) works a
// job of U/c size-c tasks per station — a full lifespan's worth, more than
// any visit can yield, so the completion column reads as the fleet-level
// achievable fraction of the cell's (U, p) contract. Cells run sequentially;
// the worker budget goes to farm.Replicate's two-level trial × station-group
// pool, and every cell is bit-identical at any -workers by the mc and farm
// determinism contracts. A non-flat topo splits the shards into clusters and
// prices cross-cluster steals (-clusters / -steallatency); farm.Run's
// validation rejects shapes the shard count cannot partition.
func sweepFleet(points []game.SweepPoint, trials int, seed int64, workers, fleet, shards int, topo farm.Topology) ([]fleetCell, error) {
	out := make([]fleetCell, len(points))
	for i, pt := range points {
		solver, err := game.Solve(pt.P, pt.U, pt.C)
		if err != nil {
			return nil, err
		}
		s := solver.Scheduler()
		factory := func(ws now.Workstation, ct now.Contract) (model.EpisodeScheduler, error) { return s, nil }
		stations := make([]now.Workstation, fleet)
		for j := range stations {
			stations[j] = now.Workstation{ID: j, Owner: fixedOwner{u: pt.U, p: pt.P}, Setup: pt.C}
		}
		perStation := int(pt.U / pt.C)
		if perStation < 1 {
			perStation = 1
		}
		job := farm.Job{Tasks: task.Fixed(fleet*perStation, pt.C)}
		f := farm.Farm{Stations: stations, OpportunitiesPerStation: 1, Shards: shards, Topology: topo}
		sums, err := f.Replicate(context.Background(), job, factory, mc.Config{Trials: trials, Seed: seed + int64(i)<<32, Workers: workers})
		if err != nil {
			return nil, fmt.Errorf("cell (U=%d p=%d) fleet: %w", pt.U, pt.P, err)
		}
		out[i] = fleetCell{
			completion: sums[farm.MetricCompletionFrac],
			imbalance:  sums[farm.MetricImbalance],
			steals:     sums[farm.MetricSteals],
			inflight:   sums[farm.MetricTasksInFlight],
		}
	}
	return out, nil
}

// distribCellSpec restates one sweep cell as a wire spec for the public
// fleet engine: fleetN stations whose owners play the E8 Poisson
// temperament (mean return U/3) inside a fixed (U, p) contract, Setup = c
// in caller units with TicksPerSetup = c so one caller unit is exactly one
// tick — the sweep's own grid. The job is the fleet mode's usual full
// lifespan of size-c tasks per station. What cannot travel is the cell's
// solved optimal schedule (a value table, not named data), so distributed
// cells schedule with the named default — the adaptive equalization
// policy; the fleet columns shift meaning accordingly. A p = 0 cell is
// rejected: the wire owner grammar cannot express a zero interrupt
// allowance (0 means "the standard default" there).
func distribCellSpec(pt game.SweepPoint, trials int, seed int64, cell, fleetN, shards, clusters int, stealLat quant.Tick) (distrib.Spec, error) {
	if pt.P < 1 {
		return distrib.Spec{}, fmt.Errorf("cell (U=%d p=%d): -distribute cannot express a zero interrupt allowance (drop p=0 from -ps)", pt.U, pt.P)
	}
	cfg := fleet.Config{
		Stations:      fleetN,
		Setup:         float64(pt.C),
		TicksPerSetup: int(pt.C),
		Opportunities: 1,
		Seed:          seed + int64(cell)<<32,
		Owners: []fleet.Owner{fleet.Poisson{
			Base: fleet.Fixed{Lifespan: float64(pt.U), Interrupts: pt.P},
			Mean: float64(pt.U) / 3,
		}},
		Shards:       shards,
		Clusters:     clusters,
		StealLatency: float64(stealLat),
	}
	perStation := int(pt.U / pt.C)
	if perStation < 1 {
		perStation = 1
	}
	job := fleet.Job{Tasks: fleet.FixedTasks(fleetN*perStation, float64(pt.C))}
	return distrib.NewSpec(cfg, job, trials)
}

// sweepFleetDistributed is sweepFleet's multi-process sibling: each cell's
// study fans out across procs re-execed copies of this binary (the hidden
// -distrib-worker mode) through a distrib.Coordinator, with study-level
// trial progress relayed to stderr. Cells run sequentially; within a cell
// the merged numbers are bit-identical at any procs by the distrib
// contract.
func sweepFleetDistributed(points []game.SweepPoint, trials int, seed int64, fleetN, shards, clusters int, stealLat quant.Tick, procs int) ([]fleetCell, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating the worker binary: %w", err)
	}
	start := distrib.ExecStarter(func() *exec.Cmd { return exec.Command(exe, "-distrib-worker") })
	out := make([]fleetCell, len(points))
	for i, pt := range points {
		spec, err := distribCellSpec(pt, trials, seed, i, fleetN, shards, clusters, stealLat)
		if err != nil {
			return nil, err
		}
		coord, err := distrib.NewCoordinator(spec, distrib.Options{
			Workers: procs,
			Start:   start,
			Progress: func(done, total int) {
				fmt.Fprintf(os.Stderr, "\rcstealsweep: cell %d/%d: %d/%d trials", i+1, len(points), done, total)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("cell (U=%d p=%d) distributed fleet: %w", pt.U, pt.P, err)
		}
		rep, err := coord.Run(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr)
			return nil, fmt.Errorf("cell (U=%d p=%d) distributed fleet: %w", pt.U, pt.P, err)
		}
		out[i] = fleetCell{
			completion: engineSummary(rep.Completion),
			imbalance:  engineSummary(rep.Imbalance),
			steals:     engineSummary(rep.Steals),
			inflight:   engineSummary(rep.InFlight),
		}
	}
	fmt.Fprintln(os.Stderr)
	return out, nil
}

// engineSummary converts a public fleet summary back to the engine form
// the table plumbing carries. The fields mirror one another exactly; only
// the package differs.
func engineSummary(s fleet.Summary) stats.Summary {
	return stats.Summary{
		N:      s.N,
		Mean:   s.Mean,
		Std:    s.Std,
		SE:     s.SE,
		Min:    s.Min,
		Max:    s.Max,
		Median: s.Median,
		P90:    s.P90,
		P99:    s.P99,
		CI95Lo: s.CI95Lo,
		CI95Hi: s.CI95Hi,
	}
}

func parseTicks(s string) ([]quant.Tick, error) {
	parts := strings.Split(s, ",")
	out := make([]quant.Tick, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad ratio %q", p)
		}
		out = append(out, quant.Tick(v))
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad interrupt bound %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstealsweep:", err)
	os.Exit(1)
}
