package main

import (
	"reflect"
	"testing"

	"cyclesteal/distrib"
	"cyclesteal/internal/game"
)

// TestDistribCellSpec pins the cell → wire-spec mapping -distribute rests
// on: the facade config restates the sweep cell exactly (caller unit = one
// tick, fixed (U, p) contract under the E8 Poisson temperament, the fleet
// mode's usual job), and the resulting spec builds a runnable study.
func TestDistribCellSpec(t *testing.T) {
	pt := game.SweepPoint{U: 1200, P: 2, C: 100}
	spec, err := distribCellSpec(pt, 40, 9, 3, 6, 4, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := distrib.Spec{
		Stations:      6,
		Setup:         100,
		TicksPerSetup: 100,
		Opportunities: 1,
		Seed:          9 + 3<<32,
		Owners: []distrib.OwnerSpec{{
			Kind: "fixed", Param: 1200, Interrupts: 2,
			Wrap: "poisson", WrapParam: 400,
		}},
		Pool:         "sharded",
		Shards:       4,
		Clusters:     2,
		StealLatency: 50,
		Tasks:        spec.Tasks, // checked structurally below
		Trials:       40,
	}
	if !reflect.DeepEqual(spec, want) {
		t.Errorf("cell spec mismatch:\n got %+v\nwant %+v", spec, want)
	}
	// The job is the fleet mode's: U/c size-c tasks per station.
	if len(spec.Tasks) != 6*12 {
		t.Errorf("got %d tasks, want %d (fleet × U/c)", len(spec.Tasks), 6*12)
	}
	for i, d := range spec.Tasks {
		if d != 100 {
			t.Fatalf("task %d duration %g, want the setup cost 100", i, d)
		}
	}
	// The spec must survive its own wire validation and build a study —
	// the exact calls every worker process will make.
	if err := spec.Validate(); err != nil {
		t.Errorf("cell spec fails wire validation: %v", err)
	}
	st, err := spec.Study()
	if err != nil {
		t.Fatalf("cell spec does not build a study: %v", err)
	}
	if st.Trials() != 40 {
		t.Errorf("study has %d trials, want 40", st.Trials())
	}
}

// TestDistribCellSpecShortLifespan pins the perStation floor: a lifespan
// under one setup still gets one task per station.
func TestDistribCellSpecShortLifespan(t *testing.T) {
	spec, err := distribCellSpec(game.SweepPoint{U: 50, P: 1, C: 100}, 5, 1, 0, 3, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Tasks) != 3 {
		t.Errorf("got %d tasks, want 3 (one per station floor)", len(spec.Tasks))
	}
}

// TestDistribCellSpecRejectsZeroInterrupts pins the loud failure for p = 0
// cells: the wire owner grammar reads a zero allowance as "the default",
// so -distribute must refuse rather than silently change the contract.
func TestDistribCellSpecRejectsZeroInterrupts(t *testing.T) {
	_, err := distribCellSpec(game.SweepPoint{U: 1000, P: 0, C: 100}, 10, 1, 0, 4, 0, 0, 0)
	if err == nil {
		t.Fatal("p = 0 cell accepted; want a loud rejection")
	}
}

// TestDistribCellSpecSeedPerCell pins the per-cell seed stride matching
// sweepFleet's, so in-process and distributed cells replay the same trial
// streams.
func TestDistribCellSpecSeedPerCell(t *testing.T) {
	for _, cell := range []int{0, 1, 7} {
		spec, err := distribCellSpec(game.SweepPoint{U: 500, P: 1, C: 100}, 5, 11, cell, 2, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := 11 + int64(cell)<<32; spec.Seed != want {
			t.Errorf("cell %d seed %d, want %d", cell, spec.Seed, want)
		}
	}
}
