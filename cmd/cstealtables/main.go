// Command cstealtables regenerates the paper's evaluation artifacts — Table
// 1, Table 2, and every figure-equivalent claim series (experiments E1–E10 of
// DESIGN.md) — and prints them as text, CSV, or JSON.
//
// Usage:
//
//	cstealtables                      # run every experiment, text output
//	cstealtables -experiment table2   # one experiment
//	cstealtables -list                # list experiment IDs
//	cstealtables -format csv          # machine-readable output
//	cstealtables -c 50 -seed 7        # grid resolution / Monte-Carlo seed
//	cstealtables -trials 1000         # widen every replicated experiment
//	cstealtables -experiment fleetscale -fleets 100,1000,10000
//	cstealtables -experiment topology   # E14: latency-priced two-tier steals
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cyclesteal/internal/experiments"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/tab"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment ID to run (default: all)")
		format     = flag.String("format", "text", "output format: text, csv, or json")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		c          = flag.Int64("c", 100, "grid resolution: ticks per setup cost")
		seed       = flag.Int64("seed", 1, "base seed for Monte-Carlo experiments (per-trial streams derive from it)")
		workers    = flag.Int("workers", 0, "Monte-Carlo worker pool size (0 = GOMAXPROCS; affects speed only, never values)")
		trials     = flag.Int("trials", 0, "override every replicated experiment's trial count (0 = per-experiment defaults; raising it widens studies without rebasing, per mc prefix stability)")
		fleets     = flag.String("fleets", "", "override the fleet sizes of the fleet sweeps (E12, E14) as comma-separated station counts, e.g. 100,1000,10000 (empty = the experiment's defaults; E14 needs multiples of 4)")
	)
	flag.Parse()

	fleetList, err := parseFleets(*fleets)
	if err != nil {
		fatal(err)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{C: quant.Tick(*c), Seed: *seed, Workers: *workers, Trials: *trials, Fleets: fleetList}
	var selected []experiments.Experiment
	if *experiment == "" {
		selected = experiments.All()
	} else {
		e, err := experiments.Lookup(*experiment)
		if err != nil {
			fatal(err)
		}
		selected = []experiments.Experiment{e}
	}

	for i, e := range selected {
		table, err := e.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		if err := emit(table, *format, i > 0); err != nil {
			fatal(err)
		}
	}
}

func emit(t *tab.Table, format string, separator bool) error {
	if separator && format == "text" {
		fmt.Println()
	}
	switch format {
	case "text":
		return t.WriteText(os.Stdout)
	case "csv":
		return t.WriteCSV(os.Stdout)
	case "json":
		return t.WriteJSON(os.Stdout)
	default:
		return fmt.Errorf("unknown format %q (want text, csv, or json)", format)
	}
}

// parseFleets decodes the -fleets list: comma-separated positive station
// counts, empty meaning "use the experiment's defaults".
func parseFleets(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -fleets entry %q (want comma-separated station counts)", p)
		}
		if n < 1 {
			return nil, fmt.Errorf("bad -fleets entry %d: fleet sizes must be ≥ 1", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstealtables:", err)
	os.Exit(1)
}
