package main

import (
	"reflect"
	"testing"

	"cyclesteal/internal/experiments"
)

func TestParseFleets(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"", nil, true},
		{"  ", nil, true},
		{"10", []int{10}, true},
		{"10,50,250", []int{10, 50, 250}, true},
		{" 10 , 50 ", []int{10, 50}, true},
		{"10,x", nil, false},
		{"0", nil, false},
		{"-5", nil, false},
		{"10,,50", nil, false},
	}
	for _, c := range cases {
		got, err := parseFleets(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseFleets(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseFleets(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// The -fleets override must reach E12 through the registry: one table row
// per requested fleet size, first column the station count.
func TestFleetsFlagShapesE12Table(t *testing.T) {
	e, err := experiments.Lookup("fleetscale")
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.Config{C: 20, Seed: 1, Trials: 1, Fleets: []int{2, 5}}
	table, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d, want one per fleet size in %v", len(table.Rows), cfg.Fleets)
	}
	for i, want := range []string{"2", "5"} {
		if table.Rows[i][0] != want {
			t.Errorf("row %d stations = %q, want %q", i, table.Rows[i][0], want)
		}
	}
	if len(table.Header) == 0 || table.Header[0] != "stations" {
		t.Errorf("header = %v", table.Header)
	}
}
