// Command nowtrace works with NOW availability traces in the public
// cyclesteal/trace format — the stand-in for the workstation-usage logs a
// 1990s cluster deployment would collect. It can generate a trace by
// recording a synthetic fleet run, replay an existing trace file through a
// scheduling policy, or summarize a trace file.
//
// Usage:
//
//	nowtrace -stations 20 -per 50 -owner office > trace.csv
//	nowtrace -stations 20 -per 50 -owner laptop -format jsonl > trace.jsonl
//	nowtrace -summary trace.csv
//	nowtrace -replay trace.csv -policy guideline
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"cyclesteal/fleet"
	"cyclesteal/trace"
)

func main() {
	var (
		stations = flag.Int("stations", 10, "number of workstations")
		per      = flag.Int("per", 20, "opportunities per station")
		owner    = flag.String("owner", "office", "owner temperament: "+strings.Join(fleet.Owners(), ", "))
		setup    = flag.Float64("setup", 5, "per-period setup cost, time units")
		ticks    = flag.Int("ticks", 0, "grid resolution, ticks per setup cost (0 = library default)")
		seed     = flag.Int64("seed", 1, "rng seed")
		format   = flag.String("format", "csv", "output encoding: csv or jsonl")
		policy   = flag.String("policy", "", "scheduling policy for -replay: "+strings.Join(fleet.Policies(), ", "))
		replay   = flag.String("replay", "", "replay this trace file through the policy and report the run")
		summary  = flag.String("summary", "", "print summary statistics of this trace file")
	)
	flag.Parse()

	switch {
	case *summary != "":
		fatalIf(summarize(*summary))
	case *replay != "":
		fatalIf(replayFile(*replay, *policy, *setup))
	default:
		fatalIf(generate(*stations, *per, *owner, *setup, *ticks, *seed, *format))
	}
}

// generate records a synthetic fleet survey and writes its trace to stdout.
func generate(stations, per int, ownerName string, setup float64, ticks int, seed int64, format string) error {
	o, err := fleet.OwnerByName(ownerName)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder()
	f, err := fleet.New(fleet.Config{
		Stations:      stations,
		Setup:         setup,
		Opportunities: per,
		Owners:        []fleet.Owner{o},
		Seed:          seed,
		TicksPerSetup: ticks,
		Record:        rec,
	})
	if err != nil {
		return err
	}
	if _, err := f.Run(context.Background(), fleet.Job{}); err != nil {
		return err
	}
	tr := rec.Trace()
	switch format {
	case "csv":
		return trace.WriteCSV(os.Stdout, tr)
	case "jsonl":
		return trace.WriteJSONL(os.Stdout, tr)
	default:
		return fmt.Errorf("unknown format %q (want csv or jsonl)", format)
	}
}

// load reads a trace file in either encoding.
func load(path string) (*trace.Trace, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return trace.Read(fh)
}

// replayFile replays a recorded trace through the named policy and reports
// the run — "what would this schedule have banked against the interruptions
// that actually happened".
func replayFile(path, policyName string, setup float64) error {
	tr, err := load(path)
	if err != nil {
		return err
	}
	pol, err := fleet.PolicyByName(policyName)
	if err != nil {
		return err
	}
	f, err := fleet.New(fleet.Config{
		Stations:      tr.Stations(),
		Setup:         setup,
		Opportunities: tr.MaxOpportunities(),
		Owners:        []fleet.Owner{fleet.Replay{Trace: tr}},
		Policy:        pol,
		TicksPerSetup: tr.TicksPerSetup,
	})
	if err != nil {
		return err
	}
	res, err := f.Run(context.Background(), fleet.Job{})
	if err != nil {
		return err
	}
	name := policyName
	if name == "" {
		name = "equalized"
	}
	fmt.Printf("replayed %s: %d stations, %d opportunities, %d interrupts\n",
		path, len(res.Stations), totalOpportunities(res), res.Interrupts)
	fmt.Printf("policy %s: work %.1f of %.1f offered (utilization %.3f), %.1f killed\n",
		name, res.Work, res.Lifespan, res.Utilization(), killed(res))
	return nil
}

// summarize prints shape and interrupt statistics of a trace file.
func summarize(path string) error {
	tr, err := load(path)
	if err != nil {
		return err
	}
	var lifespan, interrupts int64
	minU, maxU := int64(0), int64(0)
	for i := range tr.Opportunities {
		o := &tr.Opportunities[i]
		lifespan += o.Lifespan
		interrupts += int64(len(o.Interrupts))
		if i == 0 || o.Lifespan < minU {
			minU = o.Lifespan
		}
		if o.Lifespan > maxU {
			maxU = o.Lifespan
		}
	}
	n := len(tr.Opportunities)
	fmt.Printf("%s: %d stations, %d opportunities, %d ticks per setup\n",
		path, tr.Stations(), n, tr.TicksPerSetup)
	if n == 0 {
		return nil
	}
	fmt.Printf("lifespans: mean %.1f, min %d, max %d ticks\n",
		float64(lifespan)/float64(n), minU, maxU)
	fmt.Printf("total lifespan: %d ticks; interrupts: %d (%.3f per opportunity)\n",
		lifespan, interrupts, float64(interrupts)/float64(n))
	return nil
}

func totalOpportunities(res fleet.Result) int {
	n := 0
	for _, s := range res.Stations {
		n += s.Opportunities
	}
	return n
}

func killed(res fleet.Result) float64 {
	k := 0.0
	for _, s := range res.Stations {
		k += s.Killed
	}
	return k
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowtrace:", err)
		os.Exit(1)
	}
}
