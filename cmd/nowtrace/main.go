// Command nowtrace generates synthetic NOW availability traces — the
// stand-in for the workstation-usage logs a 1990s cluster deployment would
// collect — and prints summary statistics or the raw CSV.
//
// Usage:
//
//	nowtrace -stations 20 -per 50 -owner office > trace.csv
//	nowtrace -stations 20 -per 50 -owner laptop -summary
package main

import (
	"flag"
	"fmt"
	"os"

	"cyclesteal/internal/now"
	"cyclesteal/internal/quant"
	"cyclesteal/internal/stats"
)

func main() {
	var (
		stations = flag.Int("stations", 10, "number of workstations")
		per      = flag.Int("per", 20, "opportunities per station")
		owner    = flag.String("owner", "office", "owner model: office, laptop, overnight")
		mean     = flag.Float64("meanreturn", 2000, "mean owner-return spacing (ticks)")
		seed     = flag.Int64("seed", 1, "rng seed")
		summary  = flag.Bool("summary", false, "print summary statistics instead of CSV")
	)
	flag.Parse()

	var model now.OwnerModel
	switch *owner {
	case "office":
		model = now.Office{MeanIdle: 5000, MaxP: 3}
	case "laptop":
		model = now.Laptop{MeanIdle: 2000}
	case "overnight":
		model = now.Overnight{Window: 30000}
	default:
		fatal(fmt.Errorf("unknown owner model %q", *owner))
	}

	ws := make([]now.Workstation, *stations)
	for i := range ws {
		ws[i] = now.Workstation{ID: i, Owner: model, Setup: 100}
	}
	trace := now.GenerateTrace(ws, *per, *mean, *seed)
	if err := now.ValidateTrace(trace); err != nil {
		fatal(err)
	}

	if !*summary {
		if err := now.WriteTraceCSV(os.Stdout, trace); err != nil {
			fatal(err)
		}
		return
	}

	lifespans := make([]float64, 0, len(trace))
	var totalInterrupts int
	var totalLifespan quant.Tick
	for _, e := range trace {
		lifespans = append(lifespans, float64(e.U))
		totalInterrupts += len(e.Interrupts)
		totalLifespan += e.U
	}
	fmt.Printf("owner model: %s; %d stations × %d opportunities\n", model.Name(), *stations, *per)
	fmt.Printf("lifespans: %s\n", stats.Summarize(lifespans))
	fmt.Printf("total lifespan: %d ticks; interrupts: %d (%.3f per opportunity)\n",
		totalLifespan, totalInterrupts, float64(totalInterrupts)/float64(len(trace)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nowtrace:", err)
	os.Exit(1)
}
