package main

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cyclesteal/fleet"
)

func TestParseJob(t *testing.T) {
	cases := []struct {
		line   string
		tenant string
		tasks  []float64
		ok     bool
	}{
		{"ana 100x8", "ana", append([]float64(nil), repeat(8, 100)...), true},
		{"bo 12.5", "bo", []float64{12.5}, true},
		{"ana 2x8,3x20,1.5", "ana", []float64{8, 8, 20, 20, 20, 1.5}, true},
		{"  ana   4x2  ", "ana", []float64{2, 2, 2, 2}, true},
		{"", "", nil, false},
		{"ana", "", nil, false},
		{"ana 8 12", "", nil, false},
		{"ana 0x8", "", nil, false},
		{"ana -3x8", "", nil, false},
		{"ana 3x-8", "", nil, false},
		{"ana 3x0", "", nil, false},
		{"ana x8", "", nil, false},
		{"ana 3x", "", nil, false},
		{"ana NaN", "", nil, false},
		{"ana Inf", "", nil, false},
		{"ana 8,", "", nil, false},
		{"ana 9999999999x1", "", nil, false},
	}
	for _, tc := range cases {
		tenant, job, err := parseJob(tc.line)
		if tc.ok != (err == nil) {
			t.Errorf("parseJob(%q): err = %v, want ok=%v", tc.line, err, tc.ok)
			continue
		}
		if !tc.ok {
			continue
		}
		if tenant != tc.tenant {
			t.Errorf("parseJob(%q): tenant %q, want %q", tc.line, tenant, tc.tenant)
		}
		if len(job.Tasks) != len(tc.tasks) {
			t.Errorf("parseJob(%q): %d tasks, want %d", tc.line, len(job.Tasks), len(tc.tasks))
			continue
		}
		for i, d := range tc.tasks {
			if job.Tasks[i] != d {
				t.Errorf("parseJob(%q): task %d = %g, want %g", tc.line, i, job.Tasks[i], d)
			}
		}
	}
}

func repeat(d float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d
	}
	return out
}

func FuzzParseJob(f *testing.F) {
	f.Add("ana 100x8")
	f.Add("bo 12.5,3x20")
	f.Add("t 1e300x2")
	f.Add("x 0x0")
	f.Add("a NaNxInf")
	f.Add("  spaced   4x2,,")
	f.Fuzz(func(t *testing.T, line string) {
		tenant, job, err := parseJob(line)
		if err != nil {
			return
		}
		if strings.TrimSpace(tenant) == "" {
			t.Fatalf("parseJob(%q): accepted empty tenant", line)
		}
		if len(job.Tasks) == 0 {
			t.Fatalf("parseJob(%q): accepted empty job", line)
		}
		for _, d := range job.Tasks {
			if !(d > 0) || math.IsInf(d, 0) {
				t.Fatalf("parseJob(%q): accepted task duration %g", line, d)
			}
		}
	})
}

// TestRunEndToEnd drives the whole binary path short of main: stdin
// submissions, a watched directory, churn, checkpointing, and the final
// summary — twice, asserting the runs are identical (the service engine is
// deterministic and submission order is fixed).
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	input := "ana 50x8\nbo 20x12,5x3\n# comment\n\nana 10x2\n"
	outputs := make([]string, 2)
	for i := range outputs {
		if err := os.WriteFile(filepath.Join(dir, "batch.jobs"), []byte("carol 30x5\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errOut bytes.Buffer
		cfg := config{
			stations:   16,
			setup:      5,
			checkpoint: 10,
			churnLeave: 0.05, churnJoin: 0.1,
			seed:  7,
			stats: time.Millisecond,
			watch: dir,
		}
		if err := run(cfg, strings.NewReader(input), &out, &errOut); err != nil {
			t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
		}
		got := out.String()
		for _, want := range []string{"job 0 ana: 50/50", "job 1 bo: 25/25", "job 2 ana: 10/10"} {
			if !strings.Contains(got, want) {
				t.Errorf("summary missing %q:\n%s", want, got)
			}
		}
		// The watcher polls at 1 Hz, so the carol job only appears if the
		// stdin jobs kept the service alive long enough — don't assert it,
		// but if it was submitted it must have finished.
		if strings.Contains(got, "carol") && !strings.Contains(got, "carol: 30/30") {
			t.Errorf("watched job submitted but unfinished:\n%s", got)
		}
		outputs[i] = got
		if _, err := os.Stat(filepath.Join(dir, "batch.jobs.done")); err == nil {
			if err := os.Remove(filepath.Join(dir, "batch.jobs.done")); err != nil {
				t.Fatal(err)
			}
		} else {
			// Not yet picked up: remove the original so run 2 starts clean.
			os.Remove(filepath.Join(dir, "batch.jobs"))
		}
	}
	// Determinism only holds when the wall-clock watcher submitted the same
	// set both times; stdin-only content always matches.
	if strings.Contains(outputs[0], "carol") == strings.Contains(outputs[1], "carol") && outputs[0] != outputs[1] {
		t.Errorf("identical submissions, different summaries:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", outputs[0], outputs[1])
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run(config{stations: 4, setup: 5, owners: "no-such-owner"}, strings.NewReader(""), &out, &errOut)
	if err == nil {
		t.Fatal("unknown owner accepted")
	}
	err = run(config{stations: 4, setup: 5, churnLeave: 1.5}, strings.NewReader(""), &out, &errOut)
	if err == nil {
		t.Fatal("leave probability 1.5 accepted")
	}
}

// Bad lines are reported to stderr and skipped; good lines still run.
func TestRunSkipsBadLines(t *testing.T) {
	var out, errOut bytes.Buffer
	input := "bad-line-no-spec\nana 10x8\nbo 0x3\n"
	if err := run(config{stations: 8, setup: 5, seed: 3}, strings.NewReader(input), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ana: 10/10") {
		t.Errorf("good job missing from summary:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "stdin:1") || !strings.Contains(errOut.String(), "stdin:3") {
		t.Errorf("bad lines not reported: %s", errOut.String())
	}
}

// The full crash-recovery flow through the CLI surface: a session logging
// to a WAL is killed mid-run by its fault plan, then a second session
// recovers from that log and finishes the job.
func TestRunKillRecover(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "run.wal")
	cfg := config{stations: 16, setup: 5, seed: 7, wal: wal, killRound: 2}
	var out, errOut bytes.Buffer
	err := run(cfg, strings.NewReader("ana 6000x8\n"), &out, &errOut)
	if !errors.Is(err, fleet.ErrSchedulerKilled) {
		t.Fatalf("killed run error %v, want ErrSchedulerKilled (stderr: %s)", err, errOut.String())
	}
	if !strings.Contains(errOut.String(), "-recover "+wal) {
		t.Errorf("kill report has no recovery hint: %s", errOut.String())
	}
	if strings.Contains(out.String(), "done in rounds") {
		t.Errorf("killed run reports a finished job:\n%s", out.String())
	}

	rcfg := config{stations: 16, setup: 5, seed: 7, recover: wal, wal: filepath.Join(dir, "run2.wal")}
	out.Reset()
	errOut.Reset()
	if err := run(rcfg, strings.NewReader(""), &out, &errOut); err != nil {
		t.Fatalf("recovery run: %v (stderr: %s)", err, errOut.String())
	}
	if !strings.Contains(out.String(), "ana: 6000/6000") {
		t.Errorf("recovered job unfinished:\n%s", out.String())
	}

	// -wal pointing at the log being recovered must be refused, not eaten.
	bad := config{stations: 16, setup: 5, seed: 7, recover: wal, wal: wal}
	if err := run(bad, strings.NewReader(""), &out, &errOut); err == nil {
		t.Fatal("recovering a log into itself accepted")
	}
}
