// Command cstealserve runs the fleet as a resident cycle-stealing service:
// one standing fleet of owner-lent workstations accepts a stream of jobs,
// multiplexes them fairly across tenants, and keeps working while stations
// churn in and out. It is the long-lived face of the batch simulators —
// the same deterministic engine, driven by submissions instead of a single
// job, entirely through the public cyclesteal/fleet facade.
//
// Jobs arrive as lines on standard input, one job per line:
//
//	tenant spec[,spec...]
//
// where each spec is either NxD (N tasks of duration D time units) or a
// bare D (one task). Blank lines and lines starting with '#' are skipped.
// On end of input the service drains everything still queued and prints a
// per-job summary. With -watch DIR the service additionally polls DIR for
// job files (same line format); a fully submitted file is renamed to
// NAME.done so it is not resubmitted.
//
// With -wal FILE every service event is written through a durable JSONL
// write-ahead log (fsync'd at round barriers). A fault plan (-crash-prob,
// -kill-round, -fault-seed) injects station crashes — queued and in-flight
// work on a fully crashed steal group is lost, not drained — and can kill
// the scheduler itself mid-run; a killed run exits reporting the log to
// recover from. -recover FILE resumes a killed session from its log:
// logged jobs are rebuilt and finished exactly as the dead session would
// have (give -wal a fresh file — the recovery re-logs the whole history).
//
// Usage:
//
//	echo "ana 500x8" | cstealserve -stations 32
//	cstealserve -stations 64 -churn-leave 0.02 -churn-join 0.05 < jobs.txt
//	cstealserve -checkpoint 10 -owners poisson-fixed -policy single < jobs.txt
//	cstealserve -watch /var/spool/jobs -stats 2s < /dev/null
//	cstealserve -wal run.wal -crash-prob 0.01 -kill-round 40 < jobs.txt
//	cstealserve -recover run.wal -wal run2.wal < /dev/null
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"cyclesteal/fleet"
)

func main() {
	var (
		stations   = flag.Int("stations", 32, "number of workstations in the standing fleet")
		setup      = flag.Float64("setup", 5, "per-period setup cost c (time units)")
		policy     = flag.String("policy", "", "scheduling policy (default: adaptive equalized)")
		owners     = flag.String("owners", "", "comma-separated owner temperaments, cycled across stations (see -list-owners)")
		listOwners = flag.Bool("list-owners", false, "print the accepted owner temperaments and exit")
		interrupts = flag.Int("p", 0, "per-contract interrupt allowance (0 = owner default)")
		checkpoint = flag.Float64("checkpoint", 0, "intra-period checkpoint interval in time units (0 = draconian, a kill erases the period)")
		adaptive   = flag.Bool("adaptive", false, "pick the checkpoint interval per contract by Young's rule (overrides -checkpoint)")
		churnLeave = flag.Float64("churn-leave", 0, "per-round probability each station leaves (its queued tasks migrate back)")
		churnJoin  = flag.Float64("churn-join", 0, "per-round probability a new station joins")
		minStation = flag.Int("min-stations", 0, "churn floor on live stations (0 = 1)")
		maxStation = flag.Int("max-stations", 0, "churn ceiling on total stations (0 = twice the initial fleet)")
		seed       = flag.Int64("seed", 1, "fleet seed; with fixed submissions the whole run is reproducible")
		workers    = flag.Int("workers", 0, "simulation worker pool (0 = GOMAXPROCS); results never depend on it")
		maxActive  = flag.Int("max-active", 0, "jobs multiplexed onto the fleet at once (0 = 4)")
		maxQueued  = flag.Int("max-queued", 0, "queued-job bound per tenant before submissions are rejected (0 = 16)")
		stats      = flag.Duration("stats", 0, "print service stats to stderr at this interval (0 = off)")
		watch      = flag.String("watch", "", "also poll this directory for job files (renamed to *.done once submitted)")
		wal        = flag.String("wal", "", "write every service event through a durable JSONL write-ahead log at this path")
		recov      = flag.String("recover", "", "resume a killed session from this write-ahead log before reading new jobs")
		crashProb  = flag.Float64("crash-prob", 0, "per-round probability each live station crashes (lost work, not a graceful leave)")
		faultSeed  = flag.Int64("fault-seed", 0, "fault sampling seed (0 = derived from -seed)")
		killRound  = flag.Int("kill-round", 0, "kill the scheduler itself at this round (0 = never); recover with -recover")
	)
	flag.Parse()
	if *listOwners {
		fmt.Println(strings.Join(fleet.Owners(), "\n"))
		return
	}
	if err := run(config{
		stations: *stations, setup: *setup, policy: *policy, owners: *owners,
		interrupts: *interrupts, checkpoint: *checkpoint, adaptive: *adaptive,
		churnLeave: *churnLeave, churnJoin: *churnJoin,
		minStations: *minStation, maxStations: *maxStation,
		seed: *seed, workers: *workers, maxActive: *maxActive, maxQueued: *maxQueued,
		stats: *stats, watch: *watch,
		wal: *wal, recover: *recov,
		crashProb: *crashProb, faultSeed: *faultSeed, killRound: *killRound,
	}, os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cstealserve:", err)
		os.Exit(1)
	}
}

type config struct {
	stations                 int
	setup                    float64
	policy, owners           string
	interrupts               int
	checkpoint               float64
	adaptive                 bool
	churnLeave, churnJoin    float64
	minStations, maxStations int
	seed                     int64
	workers                  int
	maxActive, maxQueued     int
	stats                    time.Duration
	watch                    string
	wal, recover             string
	crashProb                float64
	faultSeed                int64
	killRound                int
}

// service builds the resident session — a fresh one, or one recovered from
// the -recover log. The returned closer releases the WAL file, if any.
func (c config) service() (*fleet.Service, func() error, error) {
	var ownerList []fleet.Owner
	if c.owners != "" {
		for _, name := range strings.Split(c.owners, ",") {
			o, err := fleet.OwnerByName(strings.TrimSpace(name))
			if err != nil {
				return nil, nil, err
			}
			ownerList = append(ownerList, o)
		}
	}
	var pol fleet.Policy
	if c.policy != "" {
		pol = fleet.Policy{Name: c.policy}
	}
	sc := fleet.ServiceConfig{
		Fleet: fleet.Config{
			Stations:           c.stations,
			Setup:              c.setup,
			Owners:             ownerList,
			Policy:             pol,
			Interrupts:         c.interrupts,
			Checkpoint:         c.checkpoint,
			CheckpointAdaptive: c.adaptive,
			Seed:               c.seed,
			Workers:            c.workers,
			Faults: fleet.FaultPlan{
				Seed:      c.faultSeed,
				CrashProb: c.crashProb,
				KillRound: c.killRound,
			},
		},
		MaxActive:          c.maxActive,
		MaxQueuedPerTenant: c.maxQueued,
		Churn: fleet.ChurnConfig{
			LeaveProb:   c.churnLeave,
			JoinProb:    c.churnJoin,
			MinStations: c.minStations,
			MaxStations: c.maxStations,
		},
	}
	closeWAL := func() error { return nil }
	if c.wal != "" {
		if c.wal == c.recover {
			return nil, nil, fmt.Errorf("-wal %s is the log being recovered: recovery re-logs the whole history, give -wal a fresh file", c.wal)
		}
		f, err := os.Create(c.wal)
		if err != nil {
			return nil, nil, err
		}
		sc.WAL = f
		closeWAL = f.Close
	}
	if c.recover != "" {
		logf, err := os.Open(c.recover)
		if err != nil {
			closeWAL()
			return nil, nil, err
		}
		defer logf.Close()
		s, err := fleet.RecoverService(sc, logf)
		if err != nil {
			closeWAL()
			return nil, nil, err
		}
		return s, closeWAL, nil
	}
	s, err := fleet.NewService(sc)
	if err != nil {
		closeWAL()
		return nil, nil, err
	}
	return s, closeWAL, nil
}

// run drives the resident service: submissions stream in from r (and the
// watch directory, if any) while the fleet works; once input is exhausted
// and every accepted job has finished, the service shuts down and the
// summary lands on w.
func run(cfg config, r io.Reader, w, errw io.Writer) error {
	s, closeWAL, err := cfg.service()
	if err != nil {
		return err
	}
	defer closeWAL()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx); err != nil {
		return err
	}
	// stopped closes when the live loop exits on its own — a station error,
	// or the fault plan killing the scheduler.
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		s.Wait()
	}()

	if cfg.stats > 0 {
		go func() {
			tick := time.NewTicker(cfg.stats)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					st := s.Stats()
					fmt.Fprintf(errw, "round %d: %d stations (+%d/-%d), %d queued, %d active, %d finished, %d tasks pending, %d steals\n",
						st.Round, st.Stations, st.Joined, st.Departed, st.QueuedJobs, st.ActiveJobs, st.FinishedJobs, st.TasksPending, st.Steals)
				}
			}
		}()
	}

	// The stdin reader and the directory watcher both submit; the mutex
	// serializes them and guards the shared handle list.
	var mu sync.Mutex
	var handles []*fleet.JobHandle
	submit := func(line, where string) {
		tenant, job, err := parseJob(line)
		if err != nil {
			fmt.Fprintf(errw, "%s: %v\n", where, err)
			return
		}
		h, err := s.Submit(tenant, job)
		if err != nil {
			fmt.Fprintf(errw, "%s: rejected: %v\n", where, err)
			return
		}
		mu.Lock()
		handles = append(handles, h)
		mu.Unlock()
	}

	stopWatch := make(chan struct{})
	watchDone := make(chan struct{})
	if cfg.watch != "" {
		go func() {
			defer close(watchDone)
			watchDir(ctx, stopWatch, cfg.watch, errw, submit)
		}()
	} else {
		close(watchDone)
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		submit(line, fmt.Sprintf("stdin:%d", lineNo))
	}
	if err := sc.Err(); err != nil {
		cancel()
		return err
	}

	// Input is done: stop the watcher, wait for every accepted job, then
	// shut the loop down and report.
	close(stopWatch)
	<-watchDone
	mu.Lock()
	done := append([]*fleet.JobHandle(nil), handles...)
	mu.Unlock()
	for _, h := range done {
		<-h.Done()
	}
	// Jobs rebuilt by -recover have no handles here: wait for the fleet
	// itself to go idle — or for the loop to stop on its own, which a
	// fault-plan kill does with every unfinished job failed.
poll:
	for {
		st := s.Stats()
		if !st.Recovering && st.ActiveJobs == 0 && st.QueuedJobs == 0 {
			break
		}
		select {
		case <-stopped:
			break poll
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	res, err := s.Wait()
	if errors.Is(err, fleet.ErrSchedulerKilled) {
		// The partial run still reports — the log holds everything it did.
		report(w, res)
		if cfg.wal != "" {
			fmt.Fprintf(errw, "scheduler killed at round %d; recover with: cstealserve -recover %s (same flags, -kill-round lifted)\n",
				res.Rounds, cfg.wal)
		}
		return err
	}
	if err != nil && err != context.Canceled {
		return err
	}
	return report(w, res)
}

// watchDir polls dir for job files: every regular file not already marked
// .done is read line by line, submitted, and renamed to NAME.done.
func watchDir(ctx context.Context, stop <-chan struct{}, dir string, errw io.Writer, submit func(line, where string)) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-stop:
			return
		case <-tick.C:
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintf(errw, "watch %s: %v\n", dir, err)
			continue
		}
		for _, e := range entries {
			if e.IsDir() || strings.HasSuffix(e.Name(), ".done") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(errw, "watch %s: %v\n", path, err)
				continue
			}
			for i, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if line == "" || strings.HasPrefix(line, "#") {
					continue
				}
				submit(line, fmt.Sprintf("%s:%d", e.Name(), i+1))
			}
			if err := os.Rename(path, path+".done"); err != nil {
				fmt.Fprintf(errw, "watch %s: %v\n", path, err)
			}
		}
	}
}

// maxTasksPerSpec bounds one spec's expansion so a hostile line cannot
// allocate without bound.
const maxTasksPerSpec = 1 << 20

// parseJob parses one submission line: `tenant spec[,spec...]` where each
// spec is NxD (N tasks of duration D time units) or a bare duration D.
func parseJob(line string) (tenant string, job fleet.Job, err error) {
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return "", fleet.Job{}, fmt.Errorf("want `tenant spec[,spec...]`, got %q", line)
	}
	tenant = fields[0]
	for _, spec := range strings.Split(fields[1], ",") {
		n, d := 1, spec
		if i := strings.IndexByte(spec, 'x'); i >= 0 {
			n, err = strconv.Atoi(spec[:i])
			if err != nil || n < 1 {
				return "", fleet.Job{}, fmt.Errorf("spec %q: task count must be a positive integer", spec)
			}
			d = spec[i+1:]
		}
		if n > maxTasksPerSpec {
			return "", fleet.Job{}, fmt.Errorf("spec %q: task count %d over the %d bound", spec, n, maxTasksPerSpec)
		}
		dur, err := strconv.ParseFloat(d, 64)
		if err != nil || math.IsNaN(dur) || math.IsInf(dur, 0) || dur <= 0 {
			return "", fleet.Job{}, fmt.Errorf("spec %q: task duration must be a positive number", spec)
		}
		for i := 0; i < n; i++ {
			job.Tasks = append(job.Tasks, dur)
		}
	}
	return tenant, job, nil
}

// report prints the drained service's summary: one line per job in
// submission order, then the fleet-wide accounting.
func report(w io.Writer, res fleet.ServiceResult) error {
	for _, j := range res.Jobs {
		state := "unfinished"
		if j.Completed {
			state = fmt.Sprintf("done in rounds %d..%d", j.SubmittedRound, j.FinishedRound)
		} else if j.TasksLost > 0 {
			state = fmt.Sprintf("lost %d tasks to faults", j.TasksLost)
		}
		fmt.Fprintf(w, "job %d %s: %d/%d tasks (%.1f time units), %s\n",
			j.ID, j.Tenant, j.TasksCompleted, j.Tasks, j.TaskWork, state)
	}
	fmt.Fprintf(w, "%d rounds, %d stations joined, %d departed, %d steals\n",
		res.Rounds, res.Joined, res.Departed, res.Fleet.Steals)
	if res.Crashed > 0 {
		fmt.Fprintf(w, "faults: %d stations crashed, %d tasks lost\n", res.Crashed, res.Fleet.TasksLost)
	}
	fmt.Fprintf(w, "fleet: %d tasks (%.1f of %.1f time units, %.1f%%), utilization %.1f%%\n",
		res.Fleet.TasksCompleted, res.Fleet.TaskWork, res.Fleet.JobWork,
		100*res.Fleet.CompletionFraction(), 100*res.Fleet.Utilization())
	return nil
}
