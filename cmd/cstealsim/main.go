// Command cstealsim simulates cycle-stealing opportunities: one schedule,
// one owner temperament, optional data-parallel task bag, repeated trials
// with summary statistics.
//
// Trials run on the internal/mc replication engine: trial i always draws
// from the seed stream -seed+i, so the summaries are reproducible and
// bit-identical at any -workers setting; -workers only changes wall-clock
// time.
//
// With -fleet N the single station becomes a network of N workstations
// (mixed office/laptop/overnight owners) farming one shared job on the
// sharded task pool, driven through the public cyclesteal/fleet facade:
// -shards picks the pool layout (0 = auto, 1 = the single shared-bag
// baseline) and each trial replays the whole farmed job on the
// deterministic two-level engine. Times (-c, -tasksize) are read in the
// caller's continuous units, exactly as the facade's other consumers do.
//
// Usage:
//
//	cstealsim -U 3600 -p 2 -c 5 -sched equalized -adv poisson -trials 100
//	cstealsim -sched nonadaptive -adv worst          # minimax replay
//	cstealsim -sched equalized -tasks 500 -tasksize 8
//	cstealsim -trials 100000 -workers 8              # large replication study
//	cstealsim -fleet 1000 -trials 20 -workers 8      # fleet-scale farmed job
//	cstealsim -fleet 64 -shards 1                    # contended-bag baseline
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"

	"cyclesteal"
	"cyclesteal/fleet"
	"cyclesteal/internal/mc"
)

// metric indexes of the replication study
const (
	mWork = iota
	mTaskWork
	mInterrupts
	mExhausted
	numMetrics
)

func main() {
	var (
		U        = flag.Float64("U", 3600, "usable lifespan (time units)")
		p        = flag.Int("p", 2, "interrupt bound")
		c        = flag.Float64("c", 5, "per-period setup cost (time units)")
		schedStr = flag.String("sched", "equalized", "schedule: equalized, guideline, optimalp1, nonadaptive, optimal, single, equalsplit, fixedchunk")
		advStr   = flag.String("adv", "poisson", "owner: worst, greedy, last, poisson, random, periodic, none")
		trials   = flag.Int("trials", 100, "number of simulated opportunities")
		seed     = flag.Int64("seed", 1, "base rng seed (trial i uses seed+i)")
		workers  = flag.Int("workers", 0, "worker pool size for the trials (0 = GOMAXPROCS)")
		nTasks   = flag.Int("tasks", 0, "attach a bag of this many tasks (0 = fluid only; fleet mode defaults to 50 per station)")
		taskSize = flag.Float64("tasksize", 10, "task duration (time units)")
		fleetN   = flag.Int("fleet", 0, "farm one shared job across this many stations (0 = single-station mode)")
		shards   = flag.Int("shards", 0, "task-bag shards in fleet mode: 0 = auto, 1 = single shared bag, n = n stripes")
		opps     = flag.Int("opportunities", 10, "owner contracts per station in fleet mode")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	// Profiling hooks: hot-path regressions (the allocation-free opportunity
	// engine especially) can then be diagnosed from a released binary with
	// `go tool pprof cstealsim profile.out` — no test harness needed.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *fleetN > 0 {
		if err := runFleet(*fleetN, *shards, *opps, *schedStr, *c, *taskSize, *nTasks, *trials, *seed, *workers); err != nil {
			fatal(err)
		}
		return
	}

	eng, err := cyclesteal.New(cyclesteal.Opportunity{Lifespan: *U, Interrupts: *p, Setup: *c})
	if err != nil {
		fatal(err)
	}
	s, err := buildScheduler(eng, *schedStr, *U, *c)
	if err != nil {
		fatal(err)
	}

	floor, err := eng.GuaranteedWork(s)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("schedule %s: guaranteed output %.4g of lifespan %g\n", *schedStr, floor, *U)

	var opts cyclesteal.SimOptions
	if *nTasks > 0 {
		opts.TaskDurations = make([]float64, *nTasks)
		for i := range opts.TaskDurations {
			opts.TaskDurations[i] = *taskSize
		}
	}

	sums, err := mc.RunVec(context.Background(), mc.Config{Trials: *trials, Seed: *seed, Workers: *workers}, numMetrics,
		func(rng *rand.Rand) ([]float64, error) {
			adv, err := buildAdversary(eng, s, *advStr, *U, rng.Int63())
			if err != nil {
				return nil, err
			}
			res, err := eng.Simulate(s, adv, opts)
			if err != nil {
				return nil, err
			}
			out := make([]float64, numMetrics)
			out[mWork] = res.Work
			out[mTaskWork] = res.TaskWork
			out[mInterrupts] = float64(res.Interrupts)
			if *nTasks > 0 && res.TasksRemaining == 0 {
				out[mExhausted] = 1
			}
			return out, nil
		})
	if err != nil {
		fatal(err)
	}

	sum := sums[mWork]
	fmt.Printf("owner %s over %d trials: work %s\n", *advStr, *trials, sum)
	fmt.Printf("  floor check: min observed %.4g ≥ guaranteed %.4g: %v\n", sum.Min, floor, sum.Min >= floor-1e-9)
	fmt.Printf("  interrupts per opportunity: %.2f\n", sums[mInterrupts].Mean)
	if *nTasks > 0 {
		ts := sums[mTaskWork]
		exhausted := int(sums[mExhausted].Mean*float64(*trials) + 0.5)
		if exhausted == *trials {
			fmt.Printf("  task-granular work: %s (bag exhausted every trial — add tasks to measure packing loss)\n", ts)
		} else {
			fmt.Printf("  task-granular work: %s (packing loss %.2f%%; bag exhausted in %d/%d trials)\n",
				ts, 100*(1-safeDiv(ts.Mean, sum.Mean)), exhausted, *trials)
		}
	}
}

// runFleet is the -fleet mode: one shared job farmed across a mixed-owner
// NOW through the public fleet facade's deterministic replication engine.
// Completion, balance and tail-risk summaries print per metric; summaries
// are bit-identical at any -workers setting.
func runFleet(stations, shards, opps int, schedName string, c, taskSize float64, nTasks, trials int, seed int64, workers int) error {
	if nTasks <= 0 {
		nTasks = 50 * stations
	}
	// Schedules that exist single-station but not fleet-wide get a pointed
	// message before the generic unknown-policy error could mislead.
	switch schedName {
	case "optimal", "optimalp1", "equalsplit":
		return fmt.Errorf("schedule %q not supported in fleet mode (want equalized, guideline, nonadaptive, single, or fixedchunk)", schedName)
	}
	policy, err := fleet.PolicyByName(schedName)
	if err != nil {
		return err
	}
	if policy.Name == "fixedchunk" {
		policy.Chunk = 25 * c
	}
	f, err := fleet.New(fleet.Config{
		Stations:      stations,
		Setup:         c,
		Policy:        policy,
		Opportunities: opps,
		Shards:        shards,
		Workers:       workers,
		Seed:          seed,
	})
	if err != nil {
		return err
	}
	job := fleet.Job{Tasks: fleet.FixedTasks(nTasks, taskSize)}

	rep, err := f.Replicate(context.Background(), job, trials)
	if err != nil {
		return err
	}
	completion := rep.Completion
	fmt.Printf("fleet %d stations (pool shards %s), job %d tasks × %g units, schedule %s, %d trials\n",
		stations, shardLabel(shards), nTasks, taskSize, schedName, trials)
	fmt.Printf("  completion:    mean %.2f%% ±%.2f  (min %.2f%%)\n",
		100*completion.Mean, 100*(completion.CI95Hi-completion.Mean), 100*completion.Min)
	fmt.Printf("  tasks done:    mean %.1f of %d\n", rep.TasksCompleted.Mean, nTasks)
	fmt.Printf("  killed time:   mean %.4g  p99 %.4g  (lifespan destroyed by kills, units)\n",
		rep.Killed.Mean, rep.Killed.P99)
	fmt.Printf("  imbalance:     mean %.3f  p99 %.3f  (max/mean station work)\n",
		rep.Imbalance.Mean, rep.Imbalance.P99)
	fmt.Printf("  interrupts:    mean %.1f per trial\n", rep.Interrupts.Mean)
	fmt.Printf("  steals:        mean %.1f cross-queue migrations per trial\n", rep.Steals.Mean)
	fmt.Println("  (summaries are bit-identical at any -workers; p99 from the bounded-error quantile sketch)")
	return nil
}

func shardLabel(shards int) string {
	switch {
	case shards == 1:
		return "1 (shared-bag baseline)"
	case shards <= 0:
		return "auto"
	default:
		return fmt.Sprint(shards)
	}
}

func buildScheduler(eng *cyclesteal.Engine, name string, U, c float64) (cyclesteal.Scheduler, error) {
	switch name {
	case "equalized":
		return eng.AdaptiveEqualized()
	case "guideline":
		return eng.AdaptiveGuideline()
	case "optimalp1":
		return eng.OptimalP1()
	case "nonadaptive":
		return eng.NonAdaptive()
	case "optimal":
		return eng.Optimal()
	case "single":
		return eng.SinglePeriod(), nil
	case "equalsplit":
		return eng.EqualSplit(10), nil
	case "fixedchunk":
		return eng.FixedChunk(U / 20), nil
	default:
		return nil, fmt.Errorf("unknown schedule %q", name)
	}
}

func buildAdversary(eng *cyclesteal.Engine, s cyclesteal.Scheduler, name string, U float64, seed int64) (cyclesteal.Adversary, error) {
	switch name {
	case "worst":
		_, adv, err := eng.WorstCase(s)
		return adv, err
	case "greedy":
		return eng.GreedyAdversary(), nil
	case "last":
		return eng.LastPeriodAdversary(), nil
	case "poisson":
		return eng.PoissonAdversary(U/3, seed), nil
	case "random":
		return eng.RandomAdversary(0.7, seed), nil
	case "periodic":
		return eng.PeriodicAdversary(U / 3.3), nil
	case "none":
		return eng.NoAdversary(), nil
	default:
		return nil, fmt.Errorf("unknown adversary %q", name)
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstealsim:", err)
	os.Exit(1)
}
