// Command cstealsim simulates cycle-stealing opportunities: one schedule,
// one owner temperament, optional data-parallel task bag, repeated trials
// with summary statistics.
//
// Trials run on the internal/mc replication engine: trial i always draws
// from the seed stream -seed+i, so the summaries are reproducible and
// bit-identical at any -workers setting; -workers only changes wall-clock
// time.
//
// Usage:
//
//	cstealsim -U 3600 -p 2 -c 5 -sched equalized -adv poisson -trials 100
//	cstealsim -sched nonadaptive -adv worst          # minimax replay
//	cstealsim -sched equalized -tasks 500 -tasksize 8
//	cstealsim -trials 100000 -workers 8              # large replication study
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"cyclesteal"
	"cyclesteal/internal/mc"
)

// metric indexes of the replication study
const (
	mWork = iota
	mTaskWork
	mInterrupts
	mExhausted
	numMetrics
)

func main() {
	var (
		U        = flag.Float64("U", 3600, "usable lifespan (time units)")
		p        = flag.Int("p", 2, "interrupt bound")
		c        = flag.Float64("c", 5, "per-period setup cost (time units)")
		schedStr = flag.String("sched", "equalized", "schedule: equalized, guideline, optimalp1, nonadaptive, optimal, single, equalsplit, fixedchunk")
		advStr   = flag.String("adv", "poisson", "owner: worst, greedy, last, poisson, random, periodic, none")
		trials   = flag.Int("trials", 100, "number of simulated opportunities")
		seed     = flag.Int64("seed", 1, "base rng seed (trial i uses seed+i)")
		workers  = flag.Int("workers", 0, "worker pool size for the trials (0 = GOMAXPROCS)")
		nTasks   = flag.Int("tasks", 0, "attach a bag of this many tasks (0 = fluid only)")
		taskSize = flag.Float64("tasksize", 10, "task duration (time units)")
	)
	flag.Parse()

	eng, err := cyclesteal.New(cyclesteal.Opportunity{Lifespan: *U, Interrupts: *p, Setup: *c})
	if err != nil {
		fatal(err)
	}
	s, err := buildScheduler(eng, *schedStr, *U, *c)
	if err != nil {
		fatal(err)
	}

	floor, err := eng.GuaranteedWork(s)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("schedule %s: guaranteed output %.4g of lifespan %g\n", *schedStr, floor, *U)

	var opts cyclesteal.SimOptions
	if *nTasks > 0 {
		opts.TaskDurations = make([]float64, *nTasks)
		for i := range opts.TaskDurations {
			opts.TaskDurations[i] = *taskSize
		}
	}

	sums, err := mc.RunVec(mc.Config{Trials: *trials, Seed: *seed, Workers: *workers}, numMetrics,
		func(rng *rand.Rand) ([]float64, error) {
			adv, err := buildAdversary(eng, s, *advStr, *U, rng.Int63())
			if err != nil {
				return nil, err
			}
			res, err := eng.Simulate(s, adv, opts)
			if err != nil {
				return nil, err
			}
			out := make([]float64, numMetrics)
			out[mWork] = res.Work
			out[mTaskWork] = res.TaskWork
			out[mInterrupts] = float64(res.Interrupts)
			if *nTasks > 0 && res.TasksRemaining == 0 {
				out[mExhausted] = 1
			}
			return out, nil
		})
	if err != nil {
		fatal(err)
	}

	sum := sums[mWork]
	fmt.Printf("owner %s over %d trials: work %s\n", *advStr, *trials, sum)
	fmt.Printf("  floor check: min observed %.4g ≥ guaranteed %.4g: %v\n", sum.Min, floor, sum.Min >= floor-1e-9)
	fmt.Printf("  interrupts per opportunity: %.2f\n", sums[mInterrupts].Mean)
	if *nTasks > 0 {
		ts := sums[mTaskWork]
		exhausted := int(sums[mExhausted].Mean*float64(*trials) + 0.5)
		if exhausted == *trials {
			fmt.Printf("  task-granular work: %s (bag exhausted every trial — add tasks to measure packing loss)\n", ts)
		} else {
			fmt.Printf("  task-granular work: %s (packing loss %.2f%%; bag exhausted in %d/%d trials)\n",
				ts, 100*(1-safeDiv(ts.Mean, sum.Mean)), exhausted, *trials)
		}
	}
}

func buildScheduler(eng *cyclesteal.Engine, name string, U, c float64) (cyclesteal.Scheduler, error) {
	switch name {
	case "equalized":
		return eng.AdaptiveEqualized()
	case "guideline":
		return eng.AdaptiveGuideline()
	case "optimalp1":
		return eng.OptimalP1()
	case "nonadaptive":
		return eng.NonAdaptive()
	case "optimal":
		return eng.Optimal()
	case "single":
		return eng.SinglePeriod(), nil
	case "equalsplit":
		return eng.EqualSplit(10), nil
	case "fixedchunk":
		return eng.FixedChunk(U / 20), nil
	default:
		return nil, fmt.Errorf("unknown schedule %q", name)
	}
}

func buildAdversary(eng *cyclesteal.Engine, s cyclesteal.Scheduler, name string, U float64, seed int64) (cyclesteal.Adversary, error) {
	switch name {
	case "worst":
		_, adv, err := eng.WorstCase(s)
		return adv, err
	case "greedy":
		return eng.GreedyAdversary(), nil
	case "last":
		return eng.LastPeriodAdversary(), nil
	case "poisson":
		return eng.PoissonAdversary(U/3, seed), nil
	case "random":
		return eng.RandomAdversary(0.7, seed), nil
	case "periodic":
		return eng.PeriodicAdversary(U / 3.3), nil
	case "none":
		return eng.NoAdversary(), nil
	default:
		return nil, fmt.Errorf("unknown adversary %q", name)
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstealsim:", err)
	os.Exit(1)
}
