// Command cstealopt queries the exact cycle-stealing game solver: the
// optimal guaranteed output W(p)[U], the optimal episode-schedule, and how
// the closed forms of the paper compare.
//
// Usage:
//
//	cstealopt -U 3600 -p 2 -c 5
//	cstealopt -U 3600 -p 2 -c 5 -schedule   # also dump the optimal periods
package main

import (
	"flag"
	"fmt"
	"os"

	"cyclesteal"
)

func main() {
	var (
		U        = flag.Float64("U", 3600, "usable lifespan (time units)")
		p        = flag.Int("p", 1, "interrupt bound")
		c        = flag.Float64("c", 5, "per-period setup cost (time units)")
		ticks    = flag.Int("ticks", 100, "grid resolution: ticks per setup cost")
		schedule = flag.Bool("schedule", false, "print the optimal episode-schedule")
	)
	flag.Parse()

	eng, err := cyclesteal.New(cyclesteal.Opportunity{Lifespan: *U, Interrupts: *p, Setup: *c},
		cyclesteal.WithTicksPerSetup(*ticks))
	if err != nil {
		fatal(err)
	}

	pred := eng.Predict()
	fmt.Printf("opportunity: U=%g, p=%d, c=%g (U/c = %.1f)\n", *U, *p, *c, *U / *c)
	if pred.ZeroWork {
		fmt.Println("zero-work regime: U ≤ (p+1)c — no schedule can guarantee any output (Prop 4.1(c))")
	}

	opt, err := eng.OptimalWork()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("optimal guaranteed output W(%d)[U]:  %.4g  (%.2f%% of lifespan)\n", *p, opt, 100*opt / *U)
	fmt.Printf("equalization prediction U−K_p√(2cU): %.4g\n", pred.AdaptiveWork)
	fmt.Printf("§3.1 non-adaptive guideline:         %.4g  (m=%d periods of %.4g)\n",
		pred.NonAdaptiveWork, pred.NonAdaptivePeriods, pred.NonAdaptivePeriodLength)
	if *p == 1 {
		fmt.Printf("Table 2 closed form U−√(2cU)−c/2:    %.4g\n", pred.OptimalP1Work)
	}

	for _, row := range []struct {
		name  string
		build func() (cyclesteal.Scheduler, error)
	}{
		{"adaptive-equalized", eng.AdaptiveEqualized},
		{"adaptive-guideline (§3.2)", eng.AdaptiveGuideline},
		{"optimal-p1 (§5.2)", eng.OptimalP1},
		{"non-adaptive (§3.1)", eng.NonAdaptive},
	} {
		s, err := row.build()
		if err != nil {
			fatal(err)
		}
		w, err := eng.GuaranteedWork(s)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-28s guarantees %.4g (gap %.4g)\n", row.name, w, opt-w)
	}

	if *schedule {
		periods, err := eng.OptimalSchedule()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("optimal episode-schedule (%d periods):\n", len(periods))
		for i, t := range periods {
			fmt.Printf("  t_%-3d %.4g\n", i+1, t)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstealopt:", err)
	os.Exit(1)
}
