// Command benchjson converts `go test -bench` text output on stdin into the
// stable JSON document CI archives per commit (BENCH_<sha>.json) — the
// repo's perf trajectory, one artifact per push, diffable across commits.
//
// Repeated runs of the same benchmark (-count > 1) aggregate into
// mean/min/max per metric, so regressions can be judged against min (least
// noisy) while mean shows the typical cost.
//
// With -baseline it becomes the trend gate CI runs per push: the new
// document (a file argument, or stdin) is diffed against the previous
// commit's artifact, a per-benchmark delta table prints, and the exit
// status is non-zero when any benchmark's ns/op — min over runs, the
// noise-resistant series — regressed by more than -threshold percent.
// Benchmarks that only exist on one side are reported but never fail the
// gate, so adding or retiring a benchmark doesn't block a PR.
//
// Usage:
//
//	go test -run='^$' -bench='^(BenchmarkMC|BenchmarkFarm)' -benchmem -count=3 ./... | benchjson -commit "$SHA" > BENCH_$SHA.json
//	benchjson -baseline BENCH_prev.json -threshold 15 BENCH_$SHA.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Stat aggregates one metric over a benchmark's repeated runs.
type Stat struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Benchmark is one benchmark's aggregated record.
type Benchmark struct {
	Name       string `json:"name"`
	Runs       int    `json:"runs"`
	Iterations int64  `json:"iterations"` // summed over runs
	NsPerOp    *Stat  `json:"ns_per_op,omitempty"`
	BPerOp     *Stat  `json:"b_per_op,omitempty"`
	AllocsOp   *Stat  `json:"allocs_per_op,omitempty"`
}

// Document is the archived artifact.
type Document struct {
	Commit     string      `json:"commit,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	commit := flag.String("commit", "", "commit SHA recorded in the document")
	baseline := flag.String("baseline", "", "trend mode: previous BENCH_*.json to diff against; the new document is the file argument (or stdin)")
	threshold := flag.Float64("threshold", 15, "trend mode: fail when a benchmark's ns/op (min over runs) regresses by more than this percent")
	flag.Parse()

	if *baseline != "" {
		if err := runCompare(*baseline, flag.Arg(0), *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() > 0 {
		// Convert mode reads stdin only; a stray file argument is almost
		// always a forgotten -baseline, and silently waiting on stdin (or
		// parsing the wrong input in a pipeline) would hide that.
		fmt.Fprintf(os.Stderr, "benchjson: unexpected argument %q (convert mode reads stdin; did you mean -baseline?)\n", flag.Arg(0))
		os.Exit(1)
	}

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc.Commit = *commit
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runCompare loads the two documents and fails on over-threshold
// regressions.
func runCompare(baselinePath, newPath string, threshold float64) error {
	old, err := readDoc(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	doc, err := readDoc(newPath)
	if err != nil {
		return fmt.Errorf("new document: %w", err)
	}
	report, regressions := compare(old, doc, threshold)
	for _, line := range report {
		fmt.Println(line)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %g%% ns/op vs %s: %s",
			len(regressions), threshold, labelOf(old), strings.Join(regressions, ", "))
	}
	return nil
}

// readDoc loads a BENCH_*.json document; "" or "-" reads stdin.
func readDoc(path string) (*Document, error) {
	var r io.Reader = os.Stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var doc Document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", pathLabel(path), err)
	}
	return &doc, nil
}

func pathLabel(path string) string {
	if path == "" || path == "-" {
		return "stdin"
	}
	return path
}

func labelOf(d *Document) string {
	if d.Commit != "" {
		return d.Commit
	}
	return "baseline"
}

// compare diffs new against old benchmark by benchmark and returns the
// human-readable report plus the names whose ns/op (min over runs, the
// noise-resistant series) regressed past the threshold. Benchmarks present
// on only one side are informational.
func compare(old, doc *Document, threshold float64) (report, regressions []string) {
	prev := make(map[string]*Stat, len(old.Benchmarks))
	for i := range old.Benchmarks {
		prev[old.Benchmarks[i].Name] = old.Benchmarks[i].NsPerOp
	}
	report = append(report, fmt.Sprintf("benchmark trend vs %s (threshold %+.0f%% ns/op, judged on min over runs):", labelOf(old), threshold))
	seen := make(map[string]bool, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		seen[b.Name] = true
		base, ok := prev[b.Name]
		switch {
		case !ok || base == nil || base.Min <= 0:
			report = append(report, fmt.Sprintf("  %-44s new (no baseline)", b.Name))
		case b.NsPerOp == nil:
			report = append(report, fmt.Sprintf("  %-44s no ns/op in new run", b.Name))
		default:
			delta := 100 * (b.NsPerOp.Min - base.Min) / base.Min
			verdict := "ok"
			if delta > threshold {
				verdict = "REGRESSION"
				regressions = append(regressions, b.Name)
			}
			report = append(report, fmt.Sprintf("  %-44s %12.0f → %12.0f ns/op  %+7.1f%%  %s",
				b.Name, base.Min, b.NsPerOp.Min, delta, verdict))
		}
	}
	for _, b := range old.Benchmarks {
		if !seen[b.Name] {
			report = append(report, fmt.Sprintf("  %-44s removed (was in baseline)", b.Name))
		}
	}
	return report, regressions
}

// sample is one parsed benchmark output line.
type sample struct {
	iterations int64
	metrics    map[string]float64 // unit → value
}

// parse consumes `go test -bench` output. Benchmark result lines look like
//
//	BenchmarkName-8   	 100	 12345 ns/op	 67 B/op	 8 allocs/op
//
// everything else (pkg headers, PASS/ok, log lines) is metadata or noise.
func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{}
	runs := map[string][]sample{}
	var order []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		// Strip the -GOMAXPROCS suffix so artifacts compare across runners.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a log line that happens to start with "Benchmark"
		}
		s := sample{iterations: iters, metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value %q in line %q", fields[i], line)
			}
			s.metrics[fields[i+1]] = v
		}
		if _, seen := runs[name]; !seen {
			order = append(order, name)
		}
		runs[name] = append(runs[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	sort.Strings(order)
	for _, name := range order {
		b := Benchmark{Name: name, Runs: len(runs[name])}
		for _, s := range runs[name] {
			b.Iterations += s.iterations
		}
		b.NsPerOp = aggregate(runs[name], "ns/op")
		b.BPerOp = aggregate(runs[name], "B/op")
		b.AllocsOp = aggregate(runs[name], "allocs/op")
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return doc, nil
}

// aggregate folds one unit's values across runs; nil when no run reported it.
func aggregate(samples []sample, unit string) *Stat {
	var st *Stat
	n := 0
	for _, s := range samples {
		v, ok := s.metrics[unit]
		if !ok {
			continue
		}
		if st == nil {
			st = &Stat{Mean: 0, Min: v, Max: v}
		}
		st.Mean += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		n++
	}
	if st != nil {
		st.Mean /= float64(n)
	}
	return st
}
