// Command benchjson converts `go test -bench` text output on stdin into the
// stable JSON document CI archives per commit (BENCH_<sha>.json) — the
// repo's perf trajectory, one artifact per push, diffable across commits.
//
// Repeated runs of the same benchmark (-count > 1) aggregate into
// mean/min/max per metric, so regressions can be judged against min (least
// noisy) while mean shows the typical cost.
//
// Usage:
//
//	go test -run='^$' -bench='^(BenchmarkMC|BenchmarkFarm)' -benchmem -count=3 ./... | benchjson -commit "$SHA" > BENCH_$SHA.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Stat aggregates one metric over a benchmark's repeated runs.
type Stat struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Benchmark is one benchmark's aggregated record.
type Benchmark struct {
	Name       string `json:"name"`
	Runs       int    `json:"runs"`
	Iterations int64  `json:"iterations"` // summed over runs
	NsPerOp    *Stat  `json:"ns_per_op,omitempty"`
	BPerOp     *Stat  `json:"b_per_op,omitempty"`
	AllocsOp   *Stat  `json:"allocs_per_op,omitempty"`
}

// Document is the archived artifact.
type Document struct {
	Commit     string      `json:"commit,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	commit := flag.String("commit", "", "commit SHA recorded in the document")
	flag.Parse()

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc.Commit = *commit
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// sample is one parsed benchmark output line.
type sample struct {
	iterations int64
	metrics    map[string]float64 // unit → value
}

// parse consumes `go test -bench` output. Benchmark result lines look like
//
//	BenchmarkName-8   	 100	 12345 ns/op	 67 B/op	 8 allocs/op
//
// everything else (pkg headers, PASS/ok, log lines) is metadata or noise.
func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{}
	runs := map[string][]sample{}
	var order []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		// Strip the -GOMAXPROCS suffix so artifacts compare across runners.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a log line that happens to start with "Benchmark"
		}
		s := sample{iterations: iters, metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value %q in line %q", fields[i], line)
			}
			s.metrics[fields[i+1]] = v
		}
		if _, seen := runs[name]; !seen {
			order = append(order, name)
		}
		runs[name] = append(runs[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	sort.Strings(order)
	for _, name := range order {
		b := Benchmark{Name: name, Runs: len(runs[name])}
		for _, s := range runs[name] {
			b.Iterations += s.iterations
		}
		b.NsPerOp = aggregate(runs[name], "ns/op")
		b.BPerOp = aggregate(runs[name], "B/op")
		b.AllocsOp = aggregate(runs[name], "allocs/op")
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return doc, nil
}

// aggregate folds one unit's values across runs; nil when no run reported it.
func aggregate(samples []sample, unit string) *Stat {
	var st *Stat
	n := 0
	for _, s := range samples {
		v, ok := s.metrics[unit]
		if !ok {
			continue
		}
		if st == nil {
			st = &Stat{Mean: 0, Min: v, Max: v}
		}
		st.Mean += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		n++
	}
	if st != nil {
		st.Mean /= float64(n)
	}
	return st
}
