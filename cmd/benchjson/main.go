// Command benchjson converts `go test -bench` text output on stdin into the
// stable JSON document CI archives per commit (BENCH_<sha>.json) — the
// repo's perf trajectory, one artifact per push, diffable across commits.
//
// Repeated runs of the same benchmark (-count > 1) aggregate into
// mean/min/max per metric, so regressions can be judged against min (least
// noisy) while mean shows the typical cost.
//
// With -baseline it becomes the trend gate CI runs per push: the new
// document (a file argument, or stdin) is diffed against the previous
// commit's artifact, a per-benchmark delta table prints, and the exit
// status is non-zero when any benchmark regressed. Three gates apply, all
// judged on min over runs (the noise-resistant series): ns/op beyond
// -threshold percent, B/op beyond -bthreshold percent, and allocs/op
// exactly — the allocation count of a deterministic benchmark is not noisy,
// so any increase fails. Benchmarks that only exist on one side are
// reported but never fail the gate, so adding or retiring a benchmark
// doesn't block a PR.
//
// With -series it charts a BENCH_*.json history: the file arguments are
// read in order (oldest first), a per-benchmark trajectory table prints to
// stdout, and -svg writes a line chart suitable for a CI artifact. The
// default chart normalizes each benchmark to its first appearance (100%),
// which makes trends comparable across benchmarks of any cost; -absolute
// instead plots raw ns/op on a log₁₀ scale, which makes the *costs*
// comparable — a decade of vertical distance is a 10× cost gap anywhere on
// the chart.
//
// Usage:
//
//	go test -run='^$' -bench='^(BenchmarkMC|BenchmarkFarm)' -benchmem -count=3 ./... | benchjson -commit "$SHA" > BENCH_$SHA.json
//	benchjson -baseline BENCH_prev.json -threshold 15 -bthreshold 15 BENCH_$SHA.json
//	benchjson -series -svg series.svg BENCH_1.json BENCH_2.json BENCH_3.json
//	benchjson -series -absolute -svg costs.svg BENCH_*.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Stat aggregates one metric over a benchmark's repeated runs.
type Stat struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Benchmark is one benchmark's aggregated record.
type Benchmark struct {
	Name       string `json:"name"`
	Runs       int    `json:"runs"`
	Iterations int64  `json:"iterations"` // summed over runs
	NsPerOp    *Stat  `json:"ns_per_op,omitempty"`
	BPerOp     *Stat  `json:"b_per_op,omitempty"`
	AllocsOp   *Stat  `json:"allocs_per_op,omitempty"`
}

// Document is the archived artifact.
type Document struct {
	Commit     string      `json:"commit,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	commit := flag.String("commit", "", "commit SHA recorded in the document")
	baseline := flag.String("baseline", "", "trend mode: previous BENCH_*.json to diff against; the new document is the file argument (or stdin)")
	threshold := flag.Float64("threshold", 15, "trend mode: fail when a benchmark's ns/op (min over runs) regresses by more than this percent")
	bthreshold := flag.Float64("bthreshold", 15, "trend mode: fail when a benchmark's B/op (min over runs) regresses by more than this percent; allocs/op is always gated exactly")
	series := flag.Bool("series", false, "series mode: chart the BENCH_*.json file arguments (oldest first) as a per-benchmark trajectory")
	svg := flag.String("svg", "", "series mode: also write an SVG line chart to this path")
	absolute := flag.Bool("absolute", false, "series mode: plot absolute ns/op on a log₁₀ scale instead of normalizing each benchmark to its first appearance")
	flag.Parse()

	if *series {
		if err := runSeries(flag.Args(), *svg, *absolute, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *baseline != "" {
		if err := runCompare(*baseline, flag.Arg(0), gates{ns: *threshold, b: *bthreshold}); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() > 0 {
		// Convert mode reads stdin only; a stray file argument is almost
		// always a forgotten -baseline, and silently waiting on stdin (or
		// parsing the wrong input in a pipeline) would hide that.
		fmt.Fprintf(os.Stderr, "benchjson: unexpected argument %q (convert mode reads stdin; did you mean -baseline?)\n", flag.Arg(0))
		os.Exit(1)
	}

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc.Commit = *commit
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// gates holds the trend thresholds: ns/op and B/op in percent (min over
// runs); allocs/op is gated exactly and needs no knob.
type gates struct {
	ns, b float64
}

// runCompare loads the two documents and fails on over-threshold
// regressions.
func runCompare(baselinePath, newPath string, g gates) error {
	old, err := readDoc(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	doc, err := readDoc(newPath)
	if err != nil {
		return fmt.Errorf("new document: %w", err)
	}
	report, regressions := compare(old, doc, g)
	for _, line := range report {
		fmt.Println(line)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d metric regression(s) vs %s (>%g%% ns/op, >%g%% B/op, any allocs/op increase): %s",
			len(regressions), labelOf(old), g.ns, g.b, strings.Join(regressions, ", "))
	}
	return nil
}

// readDoc loads a BENCH_*.json document; "" or "-" reads stdin.
func readDoc(path string) (*Document, error) {
	var r io.Reader = os.Stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var doc Document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", pathLabel(path), err)
	}
	return &doc, nil
}

func pathLabel(path string) string {
	if path == "" || path == "-" {
		return "stdin"
	}
	return path
}

func labelOf(d *Document) string {
	if d.Commit != "" {
		return d.Commit
	}
	return "baseline"
}

// compare diffs new against old benchmark by benchmark and returns the
// human-readable report plus the regressed metrics, all judged on min over
// runs (the noise-resistant series): ns/op and B/op against their percent
// thresholds, allocs/op exactly — a deterministic benchmark's allocation
// count has no noise to forgive. Benchmarks or metrics present on only one
// side are informational.
func compare(old, doc *Document, g gates) (report, regressions []string) {
	prev := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		prev[b.Name] = b
	}
	report = append(report, fmt.Sprintf(
		"benchmark trend vs %s (min over runs; fail >%+.0f%% ns/op, >%+.0f%% B/op, any allocs/op increase):",
		labelOf(old), g.ns, g.b))
	seen := make(map[string]bool, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		seen[b.Name] = true
		base, ok := prev[b.Name]
		if !ok {
			report = append(report, fmt.Sprintf("  %-44s new (no baseline)", b.Name))
			continue
		}
		line := fmt.Sprintf("  %-44s", b.Name)
		ns, nsBad := gateMetric(base.NsPerOp, b.NsPerOp, "ns/op", g.ns, false)
		bOp, bBad := gateMetric(base.BPerOp, b.BPerOp, "B/op", g.b, false)
		al, alBad := gateMetric(base.AllocsOp, b.AllocsOp, "allocs/op", 0, true)
		report = append(report, line+ns+bOp+al)
		if nsBad {
			regressions = append(regressions, b.Name+" (ns/op)")
		}
		if bBad {
			regressions = append(regressions, b.Name+" (B/op)")
		}
		if alBad {
			regressions = append(regressions, b.Name+" (allocs/op)")
		}
	}
	for _, b := range old.Benchmarks {
		if !seen[b.Name] {
			report = append(report, fmt.Sprintf("  %-44s removed (was in baseline)", b.Name))
		}
	}
	return report, regressions
}

// gateMetric formats one metric's delta column and reports whether it
// regressed. exact gates any increase; otherwise the threshold is a percent
// of the baseline min. A baseline min of 0 is a real measurement, not a
// missing one — zero-alloc benchmarks are exactly what the allocs gate
// protects — so any increase from 0 fails (a percent of zero is undefined
// either way). Metrics missing on either side never fail (a benchmark
// gaining -benchmem columns, or an old artifact predating them, must not
// block a PR).
func gateMetric(base, cur *Stat, unit string, threshold float64, exact bool) (col string, bad bool) {
	switch {
	case base == nil && cur == nil:
		return "", false
	case base == nil:
		return fmt.Sprintf("  %s: new %.0f", unit, cur.Min), false
	case cur == nil:
		return fmt.Sprintf("  %s: dropped (was %.0f)", unit, base.Min), false
	}
	verdict := "ok"
	if base.Min > 0 {
		delta := 100 * (cur.Min - base.Min) / base.Min
		if exact && cur.Min > base.Min || !exact && delta > threshold {
			verdict = "REGRESSION"
			bad = true
		}
		return fmt.Sprintf("  %s: %.0f → %.0f (%+.1f%%) %s", unit, base.Min, cur.Min, delta, verdict), bad
	}
	if cur.Min > 0 {
		verdict = "REGRESSION"
		bad = true
	}
	return fmt.Sprintf("  %s: 0 → %.0f %s", unit, cur.Min, verdict), bad
}

// sample is one parsed benchmark output line.
type sample struct {
	iterations int64
	metrics    map[string]float64 // unit → value
}

// parse consumes `go test -bench` output. Benchmark result lines look like
//
//	BenchmarkName-8   	 100	 12345 ns/op	 67 B/op	 8 allocs/op
//
// everything else (pkg headers, PASS/ok, log lines) is metadata or noise.
func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{}
	runs := map[string][]sample{}
	var order []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		// Strip the -GOMAXPROCS suffix so artifacts compare across runners.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a log line that happens to start with "Benchmark"
		}
		s := sample{iterations: iters, metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value %q in line %q", fields[i], line)
			}
			s.metrics[fields[i+1]] = v
		}
		if _, seen := runs[name]; !seen {
			order = append(order, name)
		}
		runs[name] = append(runs[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	sort.Strings(order)
	for _, name := range order {
		b := Benchmark{Name: name, Runs: len(runs[name])}
		for _, s := range runs[name] {
			b.Iterations += s.iterations
		}
		b.NsPerOp = aggregate(runs[name], "ns/op")
		b.BPerOp = aggregate(runs[name], "B/op")
		b.AllocsOp = aggregate(runs[name], "allocs/op")
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return doc, nil
}

// aggregate folds one unit's values across runs; nil when no run reported it.
func aggregate(samples []sample, unit string) *Stat {
	var st *Stat
	n := 0
	for _, s := range samples {
		v, ok := s.metrics[unit]
		if !ok {
			continue
		}
		if st == nil {
			st = &Stat{Mean: 0, Min: v, Max: v}
		}
		st.Mean += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		n++
	}
	if st != nil {
		st.Mean /= float64(n)
	}
	return st
}

// --- series mode ---------------------------------------------------------------

// seriesPoint is one benchmark's measurement at one history document.
type seriesPoint struct {
	doc    int // index into the document sequence — the x axis
	commit string
	ns     *Stat
	b      *Stat
	allocs *Stat
}

// runSeries loads an ordered BENCH_*.json history and renders the
// per-benchmark trajectory: a text table on w, and optionally an SVG line
// chart (ns/op min — normalized to each benchmark's first appearance, or
// absolute on a log scale).
func runSeries(paths []string, svgPath string, absolute bool, w io.Writer) error {
	if len(paths) < 1 {
		return fmt.Errorf("series mode needs at least one BENCH_*.json argument")
	}
	var commits []string
	series := map[string][]seriesPoint{} // benchmark → one point per document it appears in
	var order []string
	for di, path := range paths {
		doc, err := readDoc(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		label := doc.Commit
		if label == "" {
			label = path
		}
		label = shortLabel(label)
		commits = append(commits, label)
		for _, b := range doc.Benchmarks {
			if _, ok := series[b.Name]; !ok {
				order = append(order, b.Name)
			}
			series[b.Name] = append(series[b.Name], seriesPoint{doc: di, commit: label, ns: b.NsPerOp, b: b.BPerOp, allocs: b.AllocsOp})
		}
	}
	sort.Strings(order)

	fmt.Fprintf(w, "benchmark series over %d document(s) (min over runs):\n", len(paths))
	for _, name := range order {
		fmt.Fprintf(w, "%s\n", name)
		var prevNs float64
		for _, pt := range series[name] {
			line := fmt.Sprintf("  %-12s", pt.commit)
			if pt.ns != nil {
				line += fmt.Sprintf(" %14.0f ns/op", pt.ns.Min)
				if prevNs > 0 {
					line += fmt.Sprintf("  %+6.1f%%", 100*(pt.ns.Min-prevNs)/prevNs)
				} else {
					line += strings.Repeat(" ", 9)
				}
				prevNs = pt.ns.Min
			}
			if pt.b != nil {
				line += fmt.Sprintf("  %12.0f B/op", pt.b.Min)
			}
			if pt.allocs != nil {
				line += fmt.Sprintf("  %9.0f allocs/op", pt.allocs.Min)
			}
			fmt.Fprintln(w, line)
		}
	}

	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := writeSeriesSVG(f, commits, order, series, absolute); err != nil {
			return err
		}
		fmt.Fprintf(w, "SVG chart written to %s\n", svgPath)
	}
	return nil
}

// shortLabel trims a full SHA down to the conventional 10 characters.
func shortLabel(s string) string {
	if len(s) > 10 {
		return s[:10]
	}
	return s
}

// svgPalette cycles per benchmark line.
var svgPalette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// seriesScale maps a benchmark measurement onto the chart's y dimension.
// The normalized scale plots 100·ns/first-appearance — trends comparable
// across benchmarks of any cost; the absolute scale plots log₁₀(ns/op) with
// decade gridlines — costs comparable across benchmarks, readable even when
// the cheapest and dearest differ by orders of magnitude.
type seriesScale struct {
	absolute bool
	min, max float64 // plotted-value range (percent, or log₁₀ ns)
}

// value maps one ns/op measurement (with its benchmark's first appearance)
// onto the scale; ok is false for unplottable inputs.
func (sc seriesScale) value(ns, base float64) (v float64, ok bool) {
	if sc.absolute {
		if ns <= 0 {
			return 0, false
		}
		return math.Log10(ns), true
	}
	if base <= 0 {
		return 0, false
	}
	return 100 * ns / base, true
}

// ticks returns the gridline positions: thirds of the range when
// normalized, integer decades (clamped to at least the range ends) when
// absolute.
func (sc seriesScale) ticks() []float64 {
	if !sc.absolute {
		return []float64{sc.min, (sc.min + sc.max) / 2, sc.max}
	}
	var out []float64
	for d := math.Ceil(sc.min); d <= math.Floor(sc.max)+1e-9; d++ {
		out = append(out, d)
	}
	if len(out) == 0 {
		out = []float64{sc.min, sc.max}
	}
	return out
}

// label renders one tick's axis label. Absolute ticks are usually whole
// decades ("1e4 ns"), but a range too narrow to contain one falls back to
// its fractional endpoints, which must label their true value — rounding
// 10^3.9 up to "1e4 ns" would misstate the axis by 2.5×.
func (sc seriesScale) label(v float64) string {
	if sc.absolute {
		if v == math.Round(v) {
			return fmt.Sprintf("1e%.0f ns", v)
		}
		return fmt.Sprintf("%.0f ns", math.Pow(10, v))
	}
	return fmt.Sprintf("%.0f%%", v)
}

// title is the chart heading.
func (sc seriesScale) title() string {
	if sc.absolute {
		return "ns/op, log scale (min over runs)"
	}
	return "ns/op trend, normalized to first appearance = 100% (min over runs)"
}

// writeSeriesSVG renders the history as a dependency-free line chart: one
// polyline per benchmark over the chosen scale. The x axis is commit order,
// oldest left.
func writeSeriesSVG(w io.Writer, commits, order []string, series map[string][]seriesPoint, absolute bool) error {
	const (
		width, height           = 960, 480
		left, right, top, botto = 70, 250, 30, 50
	)
	plotW := float64(width - left - right)
	plotH := float64(height - top - botto)

	// Map every point onto the scale and find the global range.
	sc := seriesScale{absolute: absolute}
	norm := map[string][]float64{} // aligned with series[name]'s point order
	first := true
	for _, name := range order {
		var base float64
		for _, pt := range series[name] {
			if pt.ns == nil {
				norm[name] = append(norm[name], math.NaN())
				continue
			}
			if base == 0 {
				base = pt.ns.Min
			}
			v, ok := sc.value(pt.ns.Min, base)
			if !ok {
				norm[name] = append(norm[name], math.NaN())
				continue
			}
			norm[name] = append(norm[name], v)
			if first || v < sc.min {
				sc.min = v
			}
			if first || v > sc.max {
				sc.max = v
			}
			first = false
		}
	}
	if first {
		sc.min, sc.max = 0, 1 // nothing plottable; render an empty frame
	}
	if sc.max == sc.min {
		sc.max = sc.min + 1
	}
	x := func(i int) float64 {
		if len(commits) == 1 {
			return float64(left) + plotW/2
		}
		return float64(left) + plotW*float64(i)/float64(len(commits)-1)
	}
	y := func(v float64) float64 {
		return float64(top) + plotH*(1-(v-sc.min)/(sc.max-sc.min))
	}

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(w, `<text x="%d" y="18" font-size="13">%s</text>`+"\n", left, sc.title())
	// Axes and horizontal guides.
	for _, v := range sc.ticks() {
		fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", left, y(v), width-right, y(v))
		fmt.Fprintf(w, `<text x="4" y="%.1f">%s</text>`+"\n", y(v)+4, sc.label(v))
	}
	// Commit ticks.
	for i, c := range commits {
		fmt.Fprintf(w, `<text x="%.1f" y="%d" transform="rotate(45 %.1f %d)">%s</text>`+"\n",
			x(i), height-botto+14, x(i), height-botto+14, c)
	}
	// One polyline + legend row per benchmark.
	for bi, name := range order {
		color := svgPalette[bi%len(svgPalette)]
		var pts []string
		for pi, pt := range series[name] {
			v := norm[name][pi]
			if math.IsNaN(v) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(pt.doc), y(v)))
		}
		if len(pts) > 0 {
			fmt.Fprintf(w, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		ly := top + 14*bi
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", width-right+10, ly, color)
		fmt.Fprintf(w, `<text x="%d" y="%d">%s</text>`+"\n", width-right+24, ly+9, strings.TrimPrefix(name, "Benchmark"))
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}
