package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: cyclesteal/internal/farm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFarmBagShardedContended-8   	       3	   1716510 ns/op	 1922224 B/op	    9378 allocs/op
BenchmarkFarmBagShardedContended-8   	       3	   1800000 ns/op	 1900000 B/op	    9000 allocs/op
BenchmarkMCEngineSerial-8            	       2	 150000000 ns/op
Benchmarking is fun: this log line must be ignored
PASS
ok  	cyclesteal/internal/farm	2.974s
`

func TestParse(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("metadata: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(doc.Benchmarks))
	}
	sharded := doc.Benchmarks[0]
	if sharded.Name != "BenchmarkFarmBagShardedContended" {
		t.Fatalf("name with -8 suffix not stripped: %q", sharded.Name)
	}
	if sharded.Runs != 2 || sharded.Iterations != 6 {
		t.Errorf("runs/iterations: %d/%d", sharded.Runs, sharded.Iterations)
	}
	if sharded.NsPerOp == nil || sharded.NsPerOp.Min != 1716510 || sharded.NsPerOp.Max != 1800000 {
		t.Errorf("ns/op aggregate: %+v", sharded.NsPerOp)
	}
	if want := (1716510.0 + 1800000.0) / 2; sharded.NsPerOp.Mean != want {
		t.Errorf("ns/op mean %v, want %v", sharded.NsPerOp.Mean, want)
	}
	if sharded.AllocsOp == nil || sharded.AllocsOp.Min != 9000 {
		t.Errorf("allocs aggregate: %+v", sharded.AllocsOp)
	}
	serial := doc.Benchmarks[1]
	if serial.Name != "BenchmarkMCEngineSerial" || serial.BPerOp != nil {
		t.Errorf("no-benchmem run should omit B/op: %+v", serial)
	}
}

func TestParseEmpty(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader("PASS\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("benchmarks from empty input: %+v", doc.Benchmarks)
	}
}

// --- trend compare -------------------------------------------------------------

func bench(name string, minNs float64) Benchmark {
	return Benchmark{Name: name, Runs: 3, NsPerOp: &Stat{Mean: minNs * 1.1, Min: minNs, Max: minNs * 1.2}}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := &Document{Commit: "aaa", Benchmarks: []Benchmark{
		bench("BenchmarkFast", 100),
		bench("BenchmarkSlow", 1000),
		bench("BenchmarkGone", 50),
	}}
	doc := &Document{Commit: "bbb", Benchmarks: []Benchmark{
		bench("BenchmarkFast", 110),  // +10%: inside a 15% threshold
		bench("BenchmarkSlow", 1300), // +30%: regression
		bench("BenchmarkNew", 10),    // no baseline: informational
	}}
	report, regressions := compare(old, doc, 15)
	if len(regressions) != 1 || regressions[0] != "BenchmarkSlow" {
		t.Fatalf("regressions = %v, want [BenchmarkSlow]", regressions)
	}
	joined := strings.Join(report, "\n")
	for _, want := range []string{"REGRESSION", "new (no baseline)", "removed (was in baseline)", "BenchmarkFast"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
}

func TestCompareImprovementAndEqualPass(t *testing.T) {
	old := &Document{Benchmarks: []Benchmark{bench("BenchmarkA", 100), bench("BenchmarkB", 200)}}
	doc := &Document{Benchmarks: []Benchmark{bench("BenchmarkA", 60), bench("BenchmarkB", 200)}}
	if _, regressions := compare(old, doc, 15); len(regressions) != 0 {
		t.Errorf("improvement flagged as regression: %v", regressions)
	}
}

func TestCompareThresholdBoundary(t *testing.T) {
	old := &Document{Benchmarks: []Benchmark{bench("BenchmarkA", 100)}}
	at := &Document{Benchmarks: []Benchmark{bench("BenchmarkA", 115)}}
	if _, regressions := compare(old, at, 15); len(regressions) != 0 {
		t.Errorf("exactly-at-threshold flagged: %v", regressions)
	}
	over := &Document{Benchmarks: []Benchmark{bench("BenchmarkA", 116)}}
	if _, regressions := compare(old, over, 15); len(regressions) != 1 {
		t.Errorf("over-threshold not flagged: %v", regressions)
	}
}

func TestCompareMissingNsPerOp(t *testing.T) {
	old := &Document{Benchmarks: []Benchmark{{Name: "BenchmarkA", Runs: 1}}}
	doc := &Document{Benchmarks: []Benchmark{bench("BenchmarkA", 10), {Name: "BenchmarkB", Runs: 1}}}
	report, regressions := compare(old, doc, 15)
	if len(regressions) != 0 {
		t.Errorf("nil ns/op produced regressions: %v", regressions)
	}
	if len(report) < 3 {
		t.Errorf("report too short: %v", report)
	}
}
