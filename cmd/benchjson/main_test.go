package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: cyclesteal/internal/farm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFarmBagShardedContended-8   	       3	   1716510 ns/op	 1922224 B/op	    9378 allocs/op
BenchmarkFarmBagShardedContended-8   	       3	   1800000 ns/op	 1900000 B/op	    9000 allocs/op
BenchmarkMCEngineSerial-8            	       2	 150000000 ns/op
Benchmarking is fun: this log line must be ignored
PASS
ok  	cyclesteal/internal/farm	2.974s
`

func TestParse(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("metadata: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(doc.Benchmarks))
	}
	sharded := doc.Benchmarks[0]
	if sharded.Name != "BenchmarkFarmBagShardedContended" {
		t.Fatalf("name with -8 suffix not stripped: %q", sharded.Name)
	}
	if sharded.Runs != 2 || sharded.Iterations != 6 {
		t.Errorf("runs/iterations: %d/%d", sharded.Runs, sharded.Iterations)
	}
	if sharded.NsPerOp == nil || sharded.NsPerOp.Min != 1716510 || sharded.NsPerOp.Max != 1800000 {
		t.Errorf("ns/op aggregate: %+v", sharded.NsPerOp)
	}
	if want := (1716510.0 + 1800000.0) / 2; sharded.NsPerOp.Mean != want {
		t.Errorf("ns/op mean %v, want %v", sharded.NsPerOp.Mean, want)
	}
	if sharded.AllocsOp == nil || sharded.AllocsOp.Min != 9000 {
		t.Errorf("allocs aggregate: %+v", sharded.AllocsOp)
	}
	serial := doc.Benchmarks[1]
	if serial.Name != "BenchmarkMCEngineSerial" || serial.BPerOp != nil {
		t.Errorf("no-benchmem run should omit B/op: %+v", serial)
	}
}

func TestParseEmpty(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader("PASS\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("benchmarks from empty input: %+v", doc.Benchmarks)
	}
}
