package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: cyclesteal/internal/farm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFarmBagShardedContended-8   	       3	   1716510 ns/op	 1922224 B/op	    9378 allocs/op
BenchmarkFarmBagShardedContended-8   	       3	   1800000 ns/op	 1900000 B/op	    9000 allocs/op
BenchmarkMCEngineSerial-8            	       2	 150000000 ns/op
Benchmarking is fun: this log line must be ignored
PASS
ok  	cyclesteal/internal/farm	2.974s
`

func TestParse(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("metadata: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(doc.Benchmarks))
	}
	sharded := doc.Benchmarks[0]
	if sharded.Name != "BenchmarkFarmBagShardedContended" {
		t.Fatalf("name with -8 suffix not stripped: %q", sharded.Name)
	}
	if sharded.Runs != 2 || sharded.Iterations != 6 {
		t.Errorf("runs/iterations: %d/%d", sharded.Runs, sharded.Iterations)
	}
	if sharded.NsPerOp == nil || sharded.NsPerOp.Min != 1716510 || sharded.NsPerOp.Max != 1800000 {
		t.Errorf("ns/op aggregate: %+v", sharded.NsPerOp)
	}
	if want := (1716510.0 + 1800000.0) / 2; sharded.NsPerOp.Mean != want {
		t.Errorf("ns/op mean %v, want %v", sharded.NsPerOp.Mean, want)
	}
	if sharded.AllocsOp == nil || sharded.AllocsOp.Min != 9000 {
		t.Errorf("allocs aggregate: %+v", sharded.AllocsOp)
	}
	serial := doc.Benchmarks[1]
	if serial.Name != "BenchmarkMCEngineSerial" || serial.BPerOp != nil {
		t.Errorf("no-benchmem run should omit B/op: %+v", serial)
	}
}

func TestParseEmpty(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader("PASS\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("benchmarks from empty input: %+v", doc.Benchmarks)
	}
}

// --- trend compare -------------------------------------------------------------

func bench(name string, minNs float64) Benchmark {
	return Benchmark{Name: name, Runs: 3, NsPerOp: &Stat{Mean: minNs * 1.1, Min: minNs, Max: minNs * 1.2}}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := &Document{Commit: "aaa", Benchmarks: []Benchmark{
		bench("BenchmarkFast", 100),
		bench("BenchmarkSlow", 1000),
		bench("BenchmarkGone", 50),
	}}
	doc := &Document{Commit: "bbb", Benchmarks: []Benchmark{
		bench("BenchmarkFast", 110),  // +10%: inside a 15% threshold
		bench("BenchmarkSlow", 1300), // +30%: regression
		bench("BenchmarkNew", 10),    // no baseline: informational
	}}
	report, regressions := compare(old, doc, gates{ns: 15, b: 15})
	if len(regressions) != 1 || regressions[0] != "BenchmarkSlow (ns/op)" {
		t.Fatalf("regressions = %v, want [BenchmarkSlow (ns/op)]", regressions)
	}
	joined := strings.Join(report, "\n")
	for _, want := range []string{"REGRESSION", "new (no baseline)", "removed (was in baseline)", "BenchmarkFast"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
}

func TestCompareImprovementAndEqualPass(t *testing.T) {
	old := &Document{Benchmarks: []Benchmark{bench("BenchmarkA", 100), bench("BenchmarkB", 200)}}
	doc := &Document{Benchmarks: []Benchmark{bench("BenchmarkA", 60), bench("BenchmarkB", 200)}}
	if _, regressions := compare(old, doc, gates{ns: 15, b: 15}); len(regressions) != 0 {
		t.Errorf("improvement flagged as regression: %v", regressions)
	}
}

func TestCompareThresholdBoundary(t *testing.T) {
	old := &Document{Benchmarks: []Benchmark{bench("BenchmarkA", 100)}}
	at := &Document{Benchmarks: []Benchmark{bench("BenchmarkA", 115)}}
	if _, regressions := compare(old, at, gates{ns: 15, b: 15}); len(regressions) != 0 {
		t.Errorf("exactly-at-threshold flagged: %v", regressions)
	}
	over := &Document{Benchmarks: []Benchmark{bench("BenchmarkA", 116)}}
	if _, regressions := compare(old, over, gates{ns: 15, b: 15}); len(regressions) != 1 {
		t.Errorf("over-threshold not flagged: %v", regressions)
	}
}

func TestCompareMissingNsPerOp(t *testing.T) {
	old := &Document{Benchmarks: []Benchmark{{Name: "BenchmarkA", Runs: 1}}}
	doc := &Document{Benchmarks: []Benchmark{bench("BenchmarkA", 10), {Name: "BenchmarkB", Runs: 1}}}
	report, regressions := compare(old, doc, gates{ns: 15, b: 15})
	if len(regressions) != 0 {
		t.Errorf("nil ns/op produced regressions: %v", regressions)
	}
	if len(report) < 3 {
		t.Errorf("report too short: %v", report)
	}
}

// benchMem builds a record with all three metric columns.
func benchMem(name string, ns, bPerOp, allocs float64) Benchmark {
	b := bench(name, ns)
	b.BPerOp = &Stat{Mean: bPerOp, Min: bPerOp, Max: bPerOp}
	b.AllocsOp = &Stat{Mean: allocs, Min: allocs, Max: allocs}
	return b
}

// The allocs/op gate is exact: a single extra allocation fails even when
// ns/op and B/op are comfortably inside their thresholds.
func TestCompareAllocsGateIsExact(t *testing.T) {
	old := &Document{Benchmarks: []Benchmark{benchMem("BenchmarkA", 100, 1000, 10)}}
	doc := &Document{Benchmarks: []Benchmark{benchMem("BenchmarkA", 101, 1001, 11)}}
	_, regressions := compare(old, doc, gates{ns: 15, b: 15})
	if len(regressions) != 1 || regressions[0] != "BenchmarkA (allocs/op)" {
		t.Fatalf("regressions = %v, want the exact allocs gate to fire", regressions)
	}
	// Equal allocations pass.
	doc = &Document{Benchmarks: []Benchmark{benchMem("BenchmarkA", 101, 1001, 10)}}
	if _, regressions := compare(old, doc, gates{ns: 15, b: 15}); len(regressions) != 0 {
		t.Errorf("equal allocs flagged: %v", regressions)
	}
	// Fewer allocations pass.
	doc = &Document{Benchmarks: []Benchmark{benchMem("BenchmarkA", 101, 1001, 4)}}
	if _, regressions := compare(old, doc, gates{ns: 15, b: 15}); len(regressions) != 0 {
		t.Errorf("alloc improvement flagged: %v", regressions)
	}
}

func TestCompareBPerOpGate(t *testing.T) {
	old := &Document{Benchmarks: []Benchmark{benchMem("BenchmarkA", 100, 1000, 10)}}
	over := &Document{Benchmarks: []Benchmark{benchMem("BenchmarkA", 100, 1160, 10)}}
	_, regressions := compare(old, over, gates{ns: 15, b: 15})
	if len(regressions) != 1 || regressions[0] != "BenchmarkA (B/op)" {
		t.Fatalf("regressions = %v, want the B/op gate to fire at +16%%", regressions)
	}
	at := &Document{Benchmarks: []Benchmark{benchMem("BenchmarkA", 100, 1150, 10)}}
	if _, regressions := compare(old, at, gates{ns: 15, b: 15}); len(regressions) != 0 {
		t.Errorf("exactly-at-threshold B/op flagged: %v", regressions)
	}
}

// An old artifact without -benchmem columns must not fail newly measured
// ones, and vice versa — metric availability changes are informational.
func TestCompareMissingMemColumnsPass(t *testing.T) {
	old := &Document{Benchmarks: []Benchmark{bench("BenchmarkA", 100)}}
	doc := &Document{Benchmarks: []Benchmark{benchMem("BenchmarkA", 100, 1000, 10)}}
	if report, regressions := compare(old, doc, gates{ns: 15, b: 15}); len(regressions) != 0 {
		t.Errorf("new mem columns flagged: %v\n%v", regressions, report)
	}
	if _, regressions := compare(doc, old, gates{ns: 15, b: 15}); len(regressions) != 0 {
		t.Errorf("dropped mem columns flagged: %v", regressions)
	}
}

// --- series mode ---------------------------------------------------------------

func writeSeriesDoc(t *testing.T, dir, commit string, benchmarks []Benchmark) string {
	t.Helper()
	doc := Document{Commit: commit, Benchmarks: benchmarks}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_"+commit+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSeriesTableAndSVG(t *testing.T) {
	dir := t.TempDir()
	p1 := writeSeriesDoc(t, dir, "aaaaaaaaaaaa", []Benchmark{benchMem("BenchmarkFarmRun", 1000, 500, 20)})
	p2 := writeSeriesDoc(t, dir, "bbbbbbbbbbbb", []Benchmark{
		benchMem("BenchmarkFarmRun", 800, 400, 10),
		benchMem("BenchmarkNew", 50, 10, 1),
	})
	svgPath := filepath.Join(dir, "series.svg")
	var out bytes.Buffer
	if err := runSeries([]string{p1, p2}, svgPath, false, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"BenchmarkFarmRun", "aaaaaaaaaa", "bbbbbbbbbb", "-20.0%", "allocs/op"} {
		if !strings.Contains(text, want) {
			t.Errorf("series table missing %q:\n%s", want, text)
		}
	}
	svg, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "polyline", "FarmRun", "</svg>"} {
		if !strings.Contains(string(svg), want) {
			t.Errorf("svg missing %q", want)
		}
	}
}

func TestRunSeriesNoArgs(t *testing.T) {
	if err := runSeries(nil, "", false, io.Discard); err == nil {
		t.Error("series mode accepted zero documents")
	}
}

// A baseline min of 0 is a real measurement — the zero-alloc benchmarks are
// exactly what the allocs gate protects — so regressing away from 0 must
// fail, for the exact gate and the percent gates alike.
func TestCompareZeroBaselineStillGates(t *testing.T) {
	old := &Document{Benchmarks: []Benchmark{benchMem("BenchmarkA", 100, 0, 0)}}
	doc := &Document{Benchmarks: []Benchmark{benchMem("BenchmarkA", 100, 800, 5)}}
	_, regressions := compare(old, doc, gates{ns: 15, b: 15})
	if len(regressions) != 2 {
		t.Fatalf("regressions = %v, want both B/op and allocs/op to fire from a 0 baseline", regressions)
	}
	// Staying at zero passes.
	doc = &Document{Benchmarks: []Benchmark{benchMem("BenchmarkA", 100, 0, 0)}}
	if _, regressions := compare(old, doc, gates{ns: 15, b: 15}); len(regressions) != 0 {
		t.Errorf("zero-to-zero flagged: %v", regressions)
	}
}

// --- absolute (log-scale) series mode -------------------------------------------

func TestSeriesScaleAbsolute(t *testing.T) {
	sc := seriesScale{absolute: true, min: 3, max: 5}
	if v, ok := sc.value(1000, 999999); !ok || v != 3 {
		t.Fatalf("value(1000) = %v, %v; want log10 = 3 ignoring the base", v, ok)
	}
	if _, ok := sc.value(0, 1); ok {
		t.Fatal("non-positive ns/op must be unplottable")
	}
	if got, want := sc.ticks(), []float64{3, 4, 5}; len(got) != len(want) || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("ticks = %v, want integer decades %v", got, want)
	}
	if got := sc.label(4); got != "1e4 ns" {
		t.Fatalf("label(4) = %q", got)
	}
	// The normalized scale is unchanged by the flag's absence.
	n := seriesScale{min: 80, max: 120}
	if v, ok := n.value(800, 1000); !ok || v != 80 {
		t.Fatalf("normalized value = %v, %v", v, ok)
	}
	if got := n.label(100); got != "100%" {
		t.Fatalf("normalized label = %q", got)
	}
}

// TestRunSeriesAbsoluteRenderedScale pins the -absolute chart's geometry:
// benchmarks a decade apart must land equidistant on the y axis (the whole
// point of the log scale), with decade gridline labels present.
func TestRunSeriesAbsoluteRenderedScale(t *testing.T) {
	dir := t.TempDir()
	p1 := writeSeriesDoc(t, dir, "cccccccccccc", []Benchmark{
		bench("BenchmarkCheap", 1000),
		bench("BenchmarkMid", 10000),
		bench("BenchmarkDear", 100000),
	})
	svgPath := filepath.Join(dir, "abs.svg")
	var out bytes.Buffer
	if err := runSeries([]string{p1}, svgPath, true, &out); err != nil {
		t.Fatal(err)
	}
	svg, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(svg)
	for _, want := range []string{"log scale", "1e3 ns", "1e4 ns", "1e5 ns"} {
		if !strings.Contains(text, want) {
			t.Errorf("absolute svg missing %q", want)
		}
	}
	ys := polylineYs(t, text)
	if len(ys) != 3 {
		t.Fatalf("want 3 single-point polylines, got %v", ys)
	}
	// Polylines render in benchmark-name order: Cheap, Dear, Mid. Cheap
	// (1e3) sits at the bottom (max y), Dear (1e5) at the top, and Mid
	// (1e4) exactly halfway — equal decades, equal pixels.
	cheap, dear, mid := ys[0], ys[1], ys[2]
	if !(cheap > mid && mid > dear) {
		t.Fatalf("log ordering violated: cheap %g, mid %g, dear %g", cheap, mid, dear)
	}
	if gap := math.Abs((cheap - mid) - (mid - dear)); gap > 0.2 {
		t.Errorf("a decade is not a constant distance: %g vs %g pixels", cheap-mid, mid-dear)
	}
}

// polylineYs extracts the y coordinate of every single-point polyline.
func polylineYs(t *testing.T, svg string) []float64 {
	t.Helper()
	re := regexp.MustCompile(`<polyline points="[0-9.]+,([0-9.]+)"`)
	var ys []float64
	for _, m := range re.FindAllStringSubmatch(svg, -1) {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		ys = append(ys, v)
	}
	return ys
}

// A log range too narrow to contain a whole decade falls back to its
// fractional endpoints; those must be labeled with their true ns value,
// not a rounded decade.
func TestSeriesScaleAbsoluteFractionalTicks(t *testing.T) {
	sc := seriesScale{absolute: true, min: math.Log10(2000), max: math.Log10(8000)}
	ticks := sc.ticks()
	if len(ticks) != 2 || ticks[0] != sc.min || ticks[1] != sc.max {
		t.Fatalf("decade-free range ticks = %v, want the endpoints", ticks)
	}
	if got := sc.label(ticks[0]); got != "2000 ns" {
		t.Fatalf("label(min) = %q, want the true value", got)
	}
	if got := sc.label(ticks[1]); got != "8000 ns" {
		t.Fatalf("label(max) = %q, want the true value", got)
	}
}
